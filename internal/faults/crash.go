package faults

import (
	"fmt"
	"sync"

	"unitp/internal/sim"
	"unitp/internal/store"
)

// Crash-point injection extends the fault substrate from the network to
// the storage layer: a CrashPlan implements store.CrashHook and decides,
// per backend operation, whether the provider process dies right there.
// Like Plan, it combines probabilistic rates with exactly scheduled
// events and is driven entirely by a dedicated sim.Rand fork, so a crash
// sweep replays bit-identically from its seed. The companion
// RecoveryPolicy decides what the disk looks like after the crash —
// clean loss of the unsynced window, a torn write, or a torn write plus
// trailing garbage — which is the half of crash testing that fsync
// bugs hide in.

// CrashPoint enumerates the provider-lifecycle places a crash can be
// injected. Points are phrased in WAL/snapshot terms rather than raw
// backend ops so sweep tables read like the recovery argument.
type CrashPoint int

// Crash points.
const (
	// CrashNone means no crash.
	CrashNone CrashPoint = iota

	// CrashBeforeAppend fires before a WAL write applies: the record is
	// wholly lost.
	CrashBeforeAppend

	// CrashAfterAppend fires after a WAL write but before any sync: the
	// record sits in the unsynced window and is at the mercy of the
	// recovery tear.
	CrashAfterAppend

	// CrashBeforeSync fires on the fsync boundary, before it applies:
	// everything since the last sync is unsynced.
	CrashBeforeSync

	// CrashAfterSync fires just after an fsync: the WAL is fully
	// durable, but the response carrying the outcome never leaves the
	// provider.
	CrashAfterSync

	// CrashMidSnapshot fires during snapshot rotation (temp-file create,
	// write, sync, rename, or old-generation removal).
	CrashMidSnapshot
)

// crashPoints lists the injectable points for sweeps.
var crashPoints = []CrashPoint{
	CrashBeforeAppend, CrashAfterAppend, CrashBeforeSync, CrashAfterSync, CrashMidSnapshot,
}

// CrashPoints returns the injectable crash points in sweep order.
func CrashPoints() []CrashPoint {
	return append([]CrashPoint(nil), crashPoints...)
}

// String names the point for tables.
func (c CrashPoint) String() string {
	switch c {
	case CrashNone:
		return "none"
	case CrashBeforeAppend:
		return "before-append"
	case CrashAfterAppend:
		return "after-append"
	case CrashBeforeSync:
		return "before-sync"
	case CrashAfterSync:
		return "after-sync"
	case CrashMidSnapshot:
		return "mid-snapshot"
	default:
		return fmt.Sprintf("crash(%d)", int(c))
	}
}

// classify maps a raw backend event to the crash point it realizes, or
// CrashNone for events outside the model (reads, closes).
func classify(ev store.CrashEvent) CrashPoint {
	// Snapshot rotation touches temp files, renames, creates of the new
	// WAL, and removals of the old generation; any of those is
	// "mid-snapshot". WAL data-path ops are writes and syncs on the
	// current wal-*.log.
	switch ev.Op {
	case store.OpCreate, store.OpRename, store.OpRemove:
		return CrashMidSnapshot
	case store.OpWrite:
		if isSnapTemp(ev.Name) {
			return CrashMidSnapshot
		}
		if ev.Phase == store.PhaseBefore {
			return CrashBeforeAppend
		}
		return CrashAfterAppend
	case store.OpSync:
		if isSnapTemp(ev.Name) {
			return CrashMidSnapshot
		}
		if ev.Phase == store.PhaseBefore {
			return CrashBeforeSync
		}
		return CrashAfterSync
	default:
		return CrashNone
	}
}

// isSnapTemp reports whether the file is a snapshot temp file (the only
// non-WAL file that sees Write/Sync).
func isSnapTemp(name string) bool {
	return len(name) > 4 && name[len(name)-4:] == ".tmp"
}

// CrashRates holds per-point crash probabilities, evaluated when an
// operation matching the point occurs.
type CrashRates struct {
	// BeforeAppend fires on a WAL write, before it applies.
	BeforeAppend float64

	// AfterAppend fires on a WAL write, after it applies (unsynced).
	AfterAppend float64

	// BeforeSync fires on a WAL fsync, before it applies.
	BeforeSync float64

	// AfterSync fires on a WAL fsync, after it applies.
	AfterSync float64

	// MidSnapshot fires on any snapshot-rotation operation.
	MidSnapshot float64
}

// UniformCrash spreads one per-operation crash probability evenly over
// every crash point — the sweep axis for F10.
func UniformCrash(rate float64) CrashRates {
	return CrashRates{
		BeforeAppend: rate, AfterAppend: rate,
		BeforeSync: rate, AfterSync: rate,
		MidSnapshot: rate,
	}
}

// rate returns the probability for one point.
func (r CrashRates) rate(p CrashPoint) float64 {
	switch p {
	case CrashBeforeAppend:
		return r.BeforeAppend
	case CrashAfterAppend:
		return r.AfterAppend
	case CrashBeforeSync:
		return r.BeforeSync
	case CrashAfterSync:
		return r.AfterSync
	case CrashMidSnapshot:
		return r.MidSnapshot
	default:
		return 0
	}
}

// CrashStats counts what a CrashPlan observed and injected.
type CrashStats struct {
	// Consulted counts hook consultations (classifiable ops only).
	Consulted int

	// Crashes counts injected crashes, by point.
	Crashes map[CrashPoint]int
}

// Total sums injected crashes across points.
func (s CrashStats) Total() int {
	n := 0
	for _, v := range s.Crashes {
		n += v
	}
	return n
}

// CrashPlan is a deterministic crash schedule implementing
// store.CrashHook via its Hook method. Safe for concurrent use.
//
// A plan is disarmed while the provider is being restored (recovery
// re-drives the same backend ops and must not crash recursively); Arm
// re-enables it for the next run segment.
type CrashPlan struct {
	mu        sync.Mutex
	rng       *sim.Rand
	rates     CrashRates
	scheduled map[CrashPoint]map[int]bool // point -> occurrence index -> crash
	seen      map[CrashPoint]int
	armed     bool
	stats     CrashStats
}

// NewCrashPlan builds a plan with probabilistic per-point rates. The
// rng must be dedicated to this plan (fork it from the experiment
// root). The plan starts armed.
func NewCrashPlan(rng *sim.Rand, rates CrashRates) *CrashPlan {
	if rng == nil {
		rng = sim.NewRand(0xC4A5)
	}
	return &CrashPlan{
		rng:       rng,
		rates:     rates,
		scheduled: map[CrashPoint]map[int]bool{},
		seen:      map[CrashPoint]int{},
		armed:     true,
		stats:     CrashStats{Crashes: map[CrashPoint]int{}},
	}
}

// ScheduleCrash registers an exact injection: the n-th occurrence
// (0-based) of the given crash point crashes, regardless of rates.
func (p *CrashPlan) ScheduleCrash(point CrashPoint, occurrence int) *CrashPlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.scheduled[point] == nil {
		p.scheduled[point] = map[int]bool{}
	}
	p.scheduled[point][occurrence] = true
	return p
}

// Arm enables crash injection.
func (p *CrashPlan) Arm() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.armed = true
}

// Disarm suspends crash injection (used while restoring a provider so
// recovery's own backend traffic cannot crash recursively).
func (p *CrashPlan) Disarm() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.armed = false
}

// Stats returns a copy of the crash counters.
func (p *CrashPlan) Stats() CrashStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := CrashStats{Consulted: p.stats.Consulted, Crashes: map[CrashPoint]int{}}
	for k, v := range p.stats.Crashes {
		out.Crashes[k] = v
	}
	return out
}

// Hook implements store.CrashHook.
func (p *CrashPlan) Hook(ev store.CrashEvent) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	point := classify(ev)
	if point == CrashNone {
		return false
	}
	idx := p.seen[point]
	p.seen[point]++
	if !p.armed {
		return false
	}
	p.stats.Consulted++
	crash := p.scheduled[point][idx]
	if !crash {
		rate := p.rates.rate(point)
		// Always draw when a rate is configured so the stream position
		// depends only on the operation sequence, not on outcomes.
		if rate > 0 && p.rng.Float64() < rate {
			crash = true
		}
	}
	if crash {
		p.stats.Crashes[point]++
	}
	return crash
}

// RecoveryPolicy decides what the unsynced window of each file looks
// like after a crash, replayed through store.(*MemBackend).Recover.
type RecoveryPolicy struct {
	// TornWrite keeps a random prefix of the unsynced bytes (a write
	// that made it partway to the platter) instead of losing them all.
	TornWrite bool

	// TrailingGarbage appends a short burst of random bytes after the
	// kept prefix (reordered sector trash).
	TrailingGarbage bool
}

// Tear returns the Recover callback realizing the policy, driven by
// rng. A zero policy loses every unsynced byte.
func (rp RecoveryPolicy) Tear(rng *sim.Rand) func(name string, pending []byte) []byte {
	if rng == nil {
		rng = sim.NewRand(0x7EA2)
	}
	return func(name string, pending []byte) []byte {
		var kept []byte
		if rp.TornWrite && len(pending) > 0 {
			kept = append(kept, pending[:rng.Intn(len(pending)+1)]...)
		}
		if rp.TrailingGarbage {
			kept = append(kept, rng.Bytes(1+rng.Intn(16))...)
		}
		return kept
	}
}
