package faults

// The socket-level half of the fault substrate: Plan injects faults on
// simulated pipes, Proxy injects them on real TCP byte streams. It is a
// chaos middlebox — clients dial the proxy, the proxy dials the real
// server, and every forwarded chunk rolls against the configured fault
// rates: abrupt connection resets (RST, not FIN), byte-level corruption,
// mid-stream truncation, and slowloris throttling. Partition windows
// sever every live flow and black-hole new ones until healed. Decisions
// are drawn from forked sim.Rand streams per connection and direction,
// so a seed reproduces the same fault decision sequence; byte-exact
// replay is NOT promised (TCP chunk boundaries vary run to run), which
// is exactly why experiments assert invariants, not transcripts.

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"unitp/internal/sim"
)

// ProxyConfig tunes the chaos middlebox.
type ProxyConfig struct {
	// Target is the upstream address the proxy forwards to.
	Target string

	// Rng seeds the per-connection fault streams (required).
	Rng *sim.Rand

	// ResetRate is the per-chunk probability of killing the connection
	// with an RST in place of the forward.
	ResetRate float64

	// CorruptRate is the per-chunk probability of flipping one bit.
	CorruptRate float64

	// TruncateRate is the per-chunk probability of forwarding only a
	// prefix of the chunk and then resetting — a frame cut mid-body.
	TruncateRate float64

	// ThrottleBytesPerSec, when > 0, slowloris-throttles forwarding to
	// roughly this many bytes per second per direction.
	ThrottleBytesPerSec int

	// ChunkSize is the forwarding granularity (default 4096). Fault
	// rolls happen per chunk, so smaller chunks mean more rolls per
	// byte.
	ChunkSize int

	// DialTimeout bounds the upstream dial (default 5s).
	DialTimeout time.Duration
}

// ProxyStats counts what the proxy did to traffic.
type ProxyStats struct {
	// Conns counts accepted downstream connections.
	Conns int

	// Refused counts connections black-holed by a partition window.
	Refused int

	// Resets counts connections killed by a reset roll (truncations
	// included — a truncate ends in a reset).
	Resets int

	// Corrupted counts bit-flipped chunks.
	Corrupted int

	// Truncated counts chunks cut short before the reset.
	Truncated int

	// Severed counts live connections killed by Partition.
	Severed int

	// BytesForwarded counts payload actually delivered (both ways).
	BytesForwarded int64
}

// Proxy is a running chaos middlebox. Construct with NewProxy, start
// with Start, aim clients at Addr().
type Proxy struct {
	cfg ProxyConfig

	mu          sync.Mutex
	ln          net.Listener
	conns       map[net.Conn]struct{} // both halves of every live flow
	partitioned bool
	connSeq     int
	stats       ProxyStats
	closed      bool

	wg sync.WaitGroup
}

// NewProxy builds a proxy; Start brings up the listener.
func NewProxy(cfg ProxyConfig) *Proxy {
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 4096
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.Rng == nil {
		cfg.Rng = sim.NewRand(0xFA17)
	}
	return &Proxy{cfg: cfg, conns: map[net.Conn]struct{}{}}
}

// Start listens on addr (use "127.0.0.1:0" for an ephemeral port) and
// serves until Close. It returns the bound address.
func (p *Proxy) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("faults: proxy listen: %w", err)
	}
	p.mu.Lock()
	p.ln = ln
	p.mu.Unlock()
	p.wg.Add(1)
	go p.serve(ln)
	return ln.Addr().String(), nil
}

// Addr reports the bound listener address.
func (p *Proxy) Addr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ln == nil {
		return ""
	}
	return p.ln.Addr().String()
}

// serve accepts flows until the listener closes.
func (p *Proxy) serve(ln net.Listener) {
	defer p.wg.Done()
	for {
		down, err := ln.Accept()
		if err != nil {
			return
		}
		p.admit(down)
	}
}

// admit applies the partition window, dials upstream, and starts the
// two chaos pumps of a flow.
func (p *Proxy) admit(down net.Conn) {
	p.mu.Lock()
	if p.closed || p.partitioned {
		p.stats.Refused++
		p.mu.Unlock()
		abort(down)
		return
	}
	p.stats.Conns++
	p.connSeq++
	seq := p.connSeq
	rng := p.cfg.Rng.Fork(fmt.Sprintf("conn-%d", seq))
	p.mu.Unlock()

	up, err := net.DialTimeout("tcp", p.cfg.Target, p.cfg.DialTimeout)
	if err != nil {
		abort(down)
		return
	}

	p.mu.Lock()
	if p.closed || p.partitioned {
		p.stats.Refused++
		p.mu.Unlock()
		abort(down)
		abort(up)
		return
	}
	p.conns[down] = struct{}{}
	p.conns[up] = struct{}{}
	p.mu.Unlock()

	var flowWG sync.WaitGroup
	flowWG.Add(2)
	p.wg.Add(1)
	pump := func(dst, src net.Conn, dir string) {
		defer flowWG.Done()
		p.pump(dst, src, rng.Fork(dir))
	}
	go pump(up, down, "c2s")
	go pump(down, up, "s2c")
	go func() {
		defer p.wg.Done()
		flowWG.Wait()
		p.release(down, up)
	}()
}

// release closes both halves of a flow and drops the tracking.
func (p *Proxy) release(down, up net.Conn) {
	down.Close()
	up.Close()
	p.mu.Lock()
	delete(p.conns, down)
	delete(p.conns, up)
	p.mu.Unlock()
}

// pump forwards src→dst chunk by chunk, rolling each chunk against the
// fault rates. Any fault or error ends the whole flow (both directions
// die when release closes the sockets).
func (p *Proxy) pump(dst, src net.Conn, rng *sim.Rand) {
	buf := make([]byte, p.cfg.ChunkSize)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			switch {
			case p.roll(rng, p.cfg.ResetRate):
				p.countReset()
				abort(dst)
				abort(src)
				return
			case p.roll(rng, p.cfg.TruncateRate):
				cut := rng.Intn(n)
				if cut > 0 {
					dst.Write(chunk[:cut])
				}
				p.countTruncate(cut)
				abort(dst)
				abort(src)
				return
			case p.roll(rng, p.cfg.CorruptRate):
				chunk[rng.Intn(n)] ^= 1 << uint(rng.Intn(8))
				p.countCorrupt()
			}
			if p.cfg.ThrottleBytesPerSec > 0 {
				time.Sleep(time.Duration(float64(n) / float64(p.cfg.ThrottleBytesPerSec) * float64(time.Second)))
			}
			if _, werr := dst.Write(chunk); werr != nil {
				return
			}
			p.countBytes(n)
		}
		if err != nil {
			// Propagate a clean EOF as a half-close so graceful drains
			// still complete through the proxy.
			if tc, ok := dst.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
			return
		}
	}
}

// roll draws one fault decision. Rates are clamped to [0,1]; the rng
// lock in sim.Rand makes concurrent pumps safe.
func (p *Proxy) roll(rng *sim.Rand, rate float64) bool {
	if rate <= 0 {
		return false
	}
	return rng.Bool(rate)
}

// Partition opens a partition window: every live flow is severed with
// an RST and new connections are refused until Heal.
func (p *Proxy) Partition() {
	p.mu.Lock()
	p.partitioned = true
	severed := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		severed = append(severed, c)
	}
	p.stats.Severed += len(severed) / 2 // two halves per flow
	p.mu.Unlock()
	for _, c := range severed {
		abort(c)
	}
}

// Heal closes the partition window; new connections flow again.
func (p *Proxy) Heal() {
	p.mu.Lock()
	p.partitioned = false
	p.mu.Unlock()
}

// Partitioned reports whether a partition window is open.
func (p *Proxy) Partitioned() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.partitioned
}

// Stats snapshots the fault counters.
func (p *Proxy) Stats() ProxyStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Close tears the proxy down: stop accepting, sever every flow, wait
// for the pumps to exit.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return errors.New("faults: proxy already closed")
	}
	p.closed = true
	ln := p.ln
	live := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		live = append(live, c)
	}
	p.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range live {
		abort(c)
	}
	p.wg.Wait()
	return nil
}

func (p *Proxy) countReset() {
	p.mu.Lock()
	p.stats.Resets++
	p.mu.Unlock()
}

func (p *Proxy) countTruncate(cut int) {
	p.mu.Lock()
	p.stats.Truncated++
	p.stats.Resets++
	p.stats.BytesForwarded += int64(cut)
	p.mu.Unlock()
}

func (p *Proxy) countCorrupt() {
	p.mu.Lock()
	p.stats.Corrupted++
	p.mu.Unlock()
}

func (p *Proxy) countBytes(n int) {
	p.mu.Lock()
	p.stats.BytesForwarded += int64(n)
	p.mu.Unlock()
}

// abort kills a connection with an RST where the platform allows it
// (SO_LINGER 0), so peers observe a hard reset rather than a clean FIN
// — the difference between "server said no" and "network ate it".
func abort(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	conn.Close()
}
