package faults

import (
	"errors"
	"testing"

	"unitp/internal/sim"
	"unitp/internal/store"
)

// driveStore runs a fixed op sequence (snapshot, then appends+syncs)
// against a fresh mem backend with the plan hooked in, returning the
// error that stopped it (nil if it ran to completion).
func driveStore(b *store.MemBackend, plan *CrashPlan, appends int) error {
	s, err := store.Open(b)
	if err != nil {
		return err
	}
	b.SetCrashHook(plan.Hook)
	defer b.SetCrashHook(nil)
	if err := s.WriteSnapshot([]byte("seed")); err != nil {
		return err
	}
	for i := 0; i < appends; i++ {
		if err := s.Append([]byte{byte(i)}); err != nil {
			return err
		}
		if err := s.Sync(); err != nil {
			return err
		}
	}
	return nil
}

func TestScheduledCrashFires(t *testing.T) {
	for _, point := range CrashPoints() {
		b := store.NewMemBackend()
		plan := NewCrashPlan(sim.NewRand(1), CrashRates{}).ScheduleCrash(point, 0)
		err := driveStore(b, plan, 4)
		if !errors.Is(err, store.ErrCrashed) {
			t.Fatalf("%v: drive err = %v, want ErrCrashed", point, err)
		}
		st := plan.Stats()
		if st.Crashes[point] != 1 || st.Total() != 1 {
			t.Fatalf("%v: stats = %+v, want exactly one crash at the point", point, st.Crashes)
		}
	}
}

func TestCrashPlanDeterminism(t *testing.T) {
	run := func() (error, CrashStats) {
		b := store.NewMemBackend()
		plan := NewCrashPlan(sim.NewRand(42).Fork("crash"), UniformCrash(0.05))
		err := driveStore(b, plan, 200)
		return err, plan.Stats()
	}
	err1, st1 := run()
	err2, st2 := run()
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("determinism: err %v vs %v", err1, err2)
	}
	if st1.Consulted != st2.Consulted || st1.Total() != st2.Total() {
		t.Fatalf("determinism: stats %+v vs %+v", st1, st2)
	}
	for _, p := range CrashPoints() {
		if st1.Crashes[p] != st2.Crashes[p] {
			t.Fatalf("determinism: point %v: %d vs %d", p, st1.Crashes[p], st2.Crashes[p])
		}
	}
}

func TestDisarmSuppressesCrashes(t *testing.T) {
	b := store.NewMemBackend()
	plan := NewCrashPlan(sim.NewRand(7), UniformCrash(1.0)) // crash on first op when armed
	plan.Disarm()
	if err := driveStore(b, plan, 10); err != nil {
		t.Fatalf("disarmed drive: %v", err)
	}
	if plan.Stats().Total() != 0 {
		t.Fatalf("disarmed plan injected crashes: %+v", plan.Stats())
	}
	plan.Arm()
	b2 := store.NewMemBackend()
	if err := driveStore(b2, plan, 10); !errors.Is(err, store.ErrCrashed) {
		t.Fatalf("re-armed drive: %v, want ErrCrashed", err)
	}
}

func TestRecoveryPolicyTear(t *testing.T) {
	pending := make([]byte, 64)
	for i := range pending {
		pending[i] = byte(i)
	}

	clean := RecoveryPolicy{}.Tear(sim.NewRand(1))
	if got := clean("wal", append([]byte(nil), pending...)); len(got) != 0 {
		t.Fatalf("clean-loss tear kept %d bytes", len(got))
	}

	torn := RecoveryPolicy{TornWrite: true}.Tear(sim.NewRand(2))
	got := torn("wal", append([]byte(nil), pending...))
	if len(got) > len(pending) {
		t.Fatalf("torn tear grew the window: %d > %d", len(got), len(pending))
	}
	for i := range got {
		if got[i] != pending[i] {
			t.Fatalf("torn tear is not a prefix at byte %d", i)
		}
	}

	garb := RecoveryPolicy{TornWrite: true, TrailingGarbage: true}.Tear(sim.NewRand(3))
	if got := garb("wal", append([]byte(nil), pending...)); len(got) == 0 {
		t.Fatalf("garbage tear returned nothing")
	}
}

// TestCrashRecoverCycle runs crash → tear → reopen repeatedly and
// checks the store always reopens with an intact record prefix.
func TestCrashRecoverCycle(t *testing.T) {
	root := sim.NewRand(99)
	b := store.NewMemBackend()
	plan := NewCrashPlan(root.Fork("crash"), UniformCrash(0.02))
	tear := RecoveryPolicy{TornWrite: true, TrailingGarbage: true}.Tear(root.Fork("tear"))

	// Crash semantics mean "Append/Sync returned ErrCrashed" does NOT
	// mean the record is gone (after-sync crashes, torn writes keeping a
	// whole frame). The recovery invariant is prefix integrity: the
	// records that come back are exactly the first k of those appended,
	// unaltered, with k bounded by the attempts.
	attempted := 0
	for life := 0; life < 20; life++ {
		plan.Disarm()
		s, err := store.Open(b)
		if err != nil {
			t.Fatalf("life %d: open: %v", life, err)
		}
		recs := s.Records()
		if len(recs) > attempted {
			t.Fatalf("life %d: recovered %d records, more than the %d appended", life, len(recs), attempted)
		}
		for i, r := range recs {
			if len(r) != 1 || r[0] != byte(i) {
				t.Fatalf("life %d: record %d = %v, not the appended prefix", life, i, r)
			}
		}
		if err := s.WriteSnapshot([]byte("state")); err != nil {
			t.Fatalf("life %d: rotate: %v", life, err)
		}
		attempted = 0
		b.SetCrashHook(plan.Hook)
		plan.Arm()
		crashed := false
		for i := 0; i < 50; i++ {
			attempted++ // before Append: an after-write crash can still persist the record
			if err := s.Append([]byte{byte(i)}); err != nil {
				crashed = true
				break
			}
			if err := s.Sync(); err != nil {
				crashed = true
				break
			}
		}
		b.SetCrashHook(nil)
		if crashed {
			b.Recover(tear)
		} else {
			s.Close()
		}
	}
	if plan.Stats().Total() == 0 {
		t.Fatalf("sweep injected no crashes; rate too low for the test to mean anything")
	}
}
