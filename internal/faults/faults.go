// Package faults is the deterministic fault-injection substrate for the
// trusted-path protocol: a Plan decides, per message traversal, whether
// the network drops, duplicates, reorders, corrupts, delays, or resets
// the frame. Plans plug into netsim.Pipe via the netsim.Injector hook,
// are driven entirely by sim.Rand (same seed → same fault sequence), and
// combine probabilistic rates with exactly scheduled events, so chaos
// experiments are reproducible and regression tests can place a specific
// fault on a specific frame.
package faults

import (
	"fmt"
	"sync"
	"time"

	"unitp/internal/netsim"
	"unitp/internal/obs"
	"unitp/internal/sim"
)

// Kind enumerates the injectable fault classes.
type Kind int

// Fault kinds.
const (
	// None delivers the frame untouched.
	None Kind = iota

	// Drop loses the frame.
	Drop

	// Duplicate delivers a request twice.
	Duplicate

	// Reorder holds a request back so it arrives after a newer one.
	Reorder

	// Corrupt flips bits in the payload.
	Corrupt

	// Delay adds a latency spike.
	Delay

	// Reset aborts the round trip like a TCP RST.
	Reset
)

// String names the kind for tables.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Drop:
		return "drop"
	case Duplicate:
		return "duplicate"
	case Reorder:
		return "reorder"
	case Corrupt:
		return "corrupt"
	case Delay:
		return "delay"
	case Reset:
		return "reset"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Rates is a probabilistic fault mix for one direction. Probabilities
// are evaluated in declaration order and are mutually exclusive per
// frame (at most one fault fires per traversal).
type Rates struct {
	// Drop is the probability of losing the frame.
	Drop float64

	// Duplicate is the probability of delivering a request twice.
	Duplicate float64

	// Reorder is the probability of holding a request for late
	// delivery.
	Reorder float64

	// Corrupt is the probability of flipping bits in flight.
	Corrupt float64

	// Reset is the probability of a connection reset.
	Reset float64

	// DelayProb is the probability of a latency spike of
	// [DelayMin, DelayMax].
	DelayProb float64

	// DelayMin and DelayMax bound an injected spike.
	DelayMin, DelayMax time.Duration
}

// Uniform spreads one total fault rate evenly across drop, duplicate,
// reorder, and corrupt — the chaos-sweep axis: every fault class is
// exercised at every point of the sweep.
func Uniform(total float64) Rates {
	p := total / 4
	return Rates{Drop: p, Duplicate: p, Reorder: p, Corrupt: p}
}

// Mild models an unreliable consumer path: mostly loss and delay.
func Mild() Rates {
	return Rates{
		Drop: 0.02, Duplicate: 0.005, Corrupt: 0.002,
		DelayProb: 0.05, DelayMin: 50 * time.Millisecond, DelayMax: 400 * time.Millisecond,
	}
}

// Harsh models a hostile or badly degraded path.
func Harsh() Rates {
	return Rates{
		Drop: 0.10, Duplicate: 0.03, Reorder: 0.03, Corrupt: 0.03, Reset: 0.01,
		DelayProb: 0.10, DelayMin: 100 * time.Millisecond, DelayMax: 1500 * time.Millisecond,
	}
}

// Event schedules one exact injection: the n-th traversal (0-based,
// counted per direction) suffers the given fault. Scheduled events take
// precedence over the probabilistic rates.
type Event struct {
	// At is the 0-based traversal index in the event's direction.
	At int

	// Dir selects which direction's counter At indexes.
	Dir netsim.Direction

	// Kind is the fault to inject.
	Kind Kind

	// Delay is the spike size when Kind == Delay.
	Delay time.Duration
}

// Stats counts what a plan injected, by kind.
type Stats struct {
	// Messages counts traversals inspected (both directions).
	Messages int

	// Injected counts faults by kind.
	Injected map[Kind]int
}

// Plan is a deterministic fault schedule implementing netsim.Injector.
// Safe for concurrent use.
type Plan struct {
	mu       sync.Mutex
	rng      *sim.Rand
	request  Rates
	response Rates
	events   map[netsim.Direction]map[int]Event
	seen     map[netsim.Direction]int
	stats    Stats
	metrics  *obs.Registry
}

var _ netsim.Injector = (*Plan)(nil)

// NewPlan builds a plan with per-direction probabilistic rates. The rng
// must be dedicated to this plan (fork it from the experiment root) so
// fault decisions do not perturb other subsystems' streams.
func NewPlan(rng *sim.Rand, request, response Rates) *Plan {
	if rng == nil {
		rng = sim.NewRand(0xFA17)
	}
	return &Plan{
		rng:      rng,
		request:  request,
		response: response,
		events: map[netsim.Direction]map[int]Event{
			netsim.DirRequest:  {},
			netsim.DirResponse: {},
		},
		seen:  map[netsim.Direction]int{},
		stats: Stats{Injected: map[Kind]int{}},
	}
}

// Schedule registers an exact injection. Later registrations for the
// same slot win.
func (p *Plan) Schedule(e Event) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.events[e.Dir][e.At] = e
	return p
}

// SetMetrics attaches a live registry: per-kind injection counters under
// "faults.injected.<kind>" plus "faults.messages". Publishing never
// consumes the plan's random stream, so a metered plan injects the same
// fault sequence as an unmetered one.
func (p *Plan) SetMetrics(m *obs.Registry) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.metrics = m
	return p
}

// Stats returns a copy of the injection counters.
func (p *Plan) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := Stats{Messages: p.stats.Messages, Injected: map[Kind]int{}}
	for k, v := range p.stats.Injected {
		out.Injected[k] = v
	}
	return out
}

// Inject implements netsim.Injector.
func (p *Plan) Inject(dir netsim.Direction, payload []byte) ([]byte, netsim.Action) {
	p.mu.Lock()
	defer p.mu.Unlock()
	idx := p.seen[dir]
	p.seen[dir]++
	p.stats.Messages++

	kind, delay := p.decide(dir, idx)
	p.metrics.Counter("faults.messages").Inc()
	if kind != None {
		p.stats.Injected[kind]++
		p.metrics.Counter("faults.injected." + kind.String()).Inc()
	}
	switch kind {
	case Drop:
		return payload, netsim.Action{Drop: true}
	case Duplicate:
		if dir == netsim.DirRequest {
			return payload, netsim.Action{Duplicate: true}
		}
		// A duplicated response is indistinguishable from a clean
		// delivery in a synchronous round trip; deliver it.
		return payload, netsim.Action{}
	case Reorder:
		if dir == netsim.DirRequest {
			return payload, netsim.Action{Reorder: true}
		}
		return payload, netsim.Action{}
	case Corrupt:
		return p.corrupt(payload), netsim.Action{Corrupt: true}
	case Delay:
		return payload, netsim.Action{Delay: delay}
	case Reset:
		return payload, netsim.Action{Reset: true}
	default:
		return payload, netsim.Action{}
	}
}

// decide picks the fault for one traversal. Must be called with p.mu
// held.
func (p *Plan) decide(dir netsim.Direction, idx int) (Kind, time.Duration) {
	if e, ok := p.events[dir][idx]; ok {
		return e.Kind, e.Delay
	}
	rates := p.request
	if dir == netsim.DirResponse {
		rates = p.response
	}
	// One uniform draw against cumulative rates keeps the per-frame
	// fault classes mutually exclusive and the stream consumption
	// constant (one draw per frame, plus extras only when a fault with
	// parameters fires).
	u := p.rng.Float64()
	cum := 0.0
	step := func(prob float64) bool {
		cum += prob
		return u < cum
	}
	switch {
	case step(rates.Drop):
		return Drop, 0
	case step(rates.Duplicate):
		return Duplicate, 0
	case step(rates.Reorder):
		return Reorder, 0
	case step(rates.Corrupt):
		return Corrupt, 0
	case step(rates.Reset):
		return Reset, 0
	case step(rates.DelayProb):
		return Delay, p.rng.Duration(rates.DelayMin, rates.DelayMax)
	default:
		return None, 0
	}
}

// corrupt flips one to three bits in a copy of the payload. Must be
// called with p.mu held.
func (p *Plan) corrupt(payload []byte) []byte {
	if len(payload) == 0 {
		return payload
	}
	out := append([]byte(nil), payload...)
	flips := 1 + p.rng.Intn(3)
	for i := 0; i < flips; i++ {
		pos := p.rng.Intn(len(out))
		out[pos] ^= byte(1 << p.rng.Intn(8))
	}
	return out
}
