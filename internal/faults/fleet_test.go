package faults

import (
	"testing"
	"time"

	"unitp/internal/netsim"
)

// A scheduled kill fires exactly once, in its own phase only, on the
// commit that carries the shard's committed-group total across the
// threshold — and only the before-ship call advances the counter, since
// the committer consults the plan twice per batch.
func TestFleetPlanKillFiresOnceAtThreshold(t *testing.T) {
	p := NewFleetPlan()
	p.KillPrimary(0, KillAfterShip, 3)

	// Batch of 2: total 2, below threshold — neither phase fires.
	if p.OnCommit(0, KillBeforeShip, 2) || p.OnCommit(0, KillAfterShip, 2) {
		t.Fatal("kill fired below threshold")
	}
	// Batch of 2: total 4 ≥ 3 — the after-ship phase fires, the
	// before-ship one (wrong phase) does not.
	if p.OnCommit(0, KillBeforeShip, 2) {
		t.Fatal("before-ship fired for an after-ship kill")
	}
	if !p.OnCommit(0, KillAfterShip, 2) {
		t.Fatal("after-ship kill did not fire at threshold")
	}
	// Once fired, never again.
	if p.OnCommit(0, KillBeforeShip, 2) || p.OnCommit(0, KillAfterShip, 2) {
		t.Fatal("kill fired twice")
	}
	if got := p.Stats().Kills[KillAfterShip.String()]; got != 1 {
		t.Fatalf("stats recorded %d kills, want 1", got)
	}
}

// Kills are per shard: shard 1's commits must not consume shard 0's kill.
func TestFleetPlanKillsArePerShard(t *testing.T) {
	p := NewFleetPlan()
	p.KillPrimary(0, KillBeforeShip, 1)
	if p.OnCommit(1, KillBeforeShip, 5) {
		t.Fatal("shard 1 tripped shard 0's kill")
	}
	if !p.OnCommit(0, KillBeforeShip, 1) {
		t.Fatal("shard 0's kill did not fire")
	}
}

// Partition and slow windows are 1-based inclusive ranges over shipping
// attempts on one link, and both can overlap the same attempt.
func TestFleetPlanShipWindows(t *testing.T) {
	p := NewFleetPlan()
	p.PartitionLink(0, 1, 2, 3)
	p.SlowLink(0, 1, 3, 4, 10*time.Millisecond)

	type want struct {
		drop  bool
		delay time.Duration
	}
	wants := []want{{false, 0}, {true, 0}, {true, 10 * time.Millisecond}, {false, 10 * time.Millisecond}, {false, 0}}
	for i, w := range wants {
		drop, delay := p.OnShip(0, 1)
		if drop != w.drop || delay != w.delay {
			t.Fatalf("attempt %d: drop=%v delay=%v, want %+v", i+1, drop, delay, w)
		}
	}
	// A different link on the same shard is untouched.
	if drop, delay := p.OnShip(0, 0); drop || delay != 0 {
		t.Fatal("windows leaked onto another follower's link")
	}
	st := p.Stats()
	if st.DroppedShips != 2 || st.DelayedShips != 2 {
		t.Fatalf("stats = %+v, want 2 dropped and 2 delayed", st)
	}
}

// The injector adapter disturbs only the request direction: a dropped
// ack is indistinguishable from a dropped ship to the sender anyway,
// and counting both would double the plan's attempt bookkeeping.
func TestFleetLinkInjectorRequestOnly(t *testing.T) {
	p := NewFleetPlan()
	p.PartitionLink(2, 0, 1, 1)
	inj := p.LinkInjector(2, 0)

	payload := []byte("frame")
	if _, act := inj.Inject(netsim.DirResponse, payload); act.Drop || act.Delay != 0 {
		t.Fatal("response direction was disturbed")
	}
	if _, act := inj.Inject(netsim.DirRequest, payload); !act.Drop {
		t.Fatal("first request attempt was not dropped")
	}
	if _, act := inj.Inject(netsim.DirRequest, payload); act.Drop {
		t.Fatal("attempt past the window was dropped")
	}
}

// Summary renders deterministically regardless of insertion order.
func TestFleetStatsSummaryDeterministic(t *testing.T) {
	p := NewFleetPlan()
	p.KillPrimary(0, KillAfterShip, 1)
	p.KillPrimary(0, KillBeforeShip, 2)
	p.OnCommit(0, KillBeforeShip, 1)
	p.OnCommit(0, KillAfterShip, 1)
	p.OnCommit(0, KillBeforeShip, 1)
	p.OnCommit(0, KillAfterShip, 1)

	want := "kills[after-ship]=1 kills[before-ship]=1 dropped-ships=0 delayed-ships=0"
	if got := p.Stats().Summary(); got != want {
		t.Fatalf("summary = %q, want %q", got, want)
	}
}
