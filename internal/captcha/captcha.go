// Package captcha models the incumbent human-verification mechanism the
// paper positions its trusted path against: visual CAPTCHA challenges
// with era-accurate solver models for legitimate humans, OCR bots, and
// human solver farms.
//
// Nothing here is a security mechanism — it is a statistical baseline
// for experiment F4 (human pass rate, bot bypass rate, and the human
// time cost of each scheme). The solve rates default to values consistent
// with the 2008–2011 literature on CAPTCHA usability (humans ~90%, with
// 10–15 s solve times) and OCR attacks (30–70% on deployed schemes), and
// are configurable for sensitivity sweeps.
package captcha

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"unitp/internal/sim"
)

// ErrChallengeUnknown is returned when answering a challenge that was
// never issued or was already consumed.
var ErrChallengeUnknown = errors.New("captcha: unknown or consumed challenge")

// Challenge is one issued CAPTCHA.
type Challenge struct {
	// ID identifies the challenge.
	ID uint64

	// Text is the distorted string the human must transcribe. (The
	// distortion is abstract: solvers interact with solve-probability
	// models, not pixels.)
	Text string
}

// Service issues and grades CAPTCHA challenges.
type Service struct {
	mu      sync.Mutex
	rng     *sim.Rand
	nextID  uint64
	pending map[uint64]string

	issued int
	passed int
	failed int
}

// alphabet excludes visually ambiguous characters, as deployed schemes
// did.
const alphabet = "abcdefghjkmnpqrstuvwxyz23456789"

// challengeLen is the transcription length.
const challengeLen = 6

// NewService creates a CAPTCHA service.
func NewService(rng *sim.Rand) *Service {
	if rng == nil {
		rng = sim.NewRand(0xCAF)
	}
	return &Service{
		rng:     rng,
		pending: make(map[uint64]string),
	}
}

// Issue creates a challenge.
func (s *Service) Issue() Challenge {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sb strings.Builder
	for i := 0; i < challengeLen; i++ {
		sb.WriteByte(alphabet[s.rng.Intn(len(alphabet))])
	}
	id := s.nextID
	s.nextID++
	text := sb.String()
	s.pending[id] = text
	s.issued++
	return Challenge{ID: id, Text: text}
}

// Answer grades a response, consuming the challenge.
func (s *Service) Answer(id uint64, response string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	want, ok := s.pending[id]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrChallengeUnknown, id)
	}
	delete(s.pending, id)
	if response == want {
		s.passed++
		return true, nil
	}
	s.failed++
	return false, nil
}

// Stats returns (issued, passed, failed) counts.
func (s *Service) Stats() (issued, passed, failed int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.issued, s.passed, s.failed
}

// Solver attempts CAPTCHA challenges with a given accuracy and time
// cost.
type Solver struct {
	// Name labels the solver in tables.
	Name string

	// Accuracy is the per-challenge success probability.
	Accuracy float64

	// SolveTime is the mean time to produce an answer.
	SolveTime time.Duration

	// SolveJitter is the standard deviation of the solve time.
	SolveJitter time.Duration

	// CostPerSolveMicroUSD is the marginal cost of one attempt in
	// micro-dollars (relevant for the solver-farm economics row).
	CostPerSolveMicroUSD int64
}

// HumanSolver models a legitimate user: ~90% accuracy at ~11 s, free.
func HumanSolver() Solver {
	return Solver{
		Name:        "human",
		Accuracy:    0.90,
		SolveTime:   11 * time.Second,
		SolveJitter: 4 * time.Second,
	}
}

// OCRBot models an automated attack on era schemes.
func OCRBot() Solver {
	return Solver{
		Name:        "ocr-bot",
		Accuracy:    0.45,
		SolveTime:   300 * time.Millisecond,
		SolveJitter: 100 * time.Millisecond,
	}
}

// WeakOCRBot models an attack on a hardened scheme.
func WeakOCRBot() Solver {
	return Solver{
		Name:        "ocr-bot-hardened-scheme",
		Accuracy:    0.15,
		SolveTime:   500 * time.Millisecond,
		SolveJitter: 150 * time.Millisecond,
	}
}

// SolverFarm models outsourced human solving: near-perfect, slow-ish,
// ~$1 per thousand.
func SolverFarm() Solver {
	return Solver{
		Name:                 "human-solver-farm",
		Accuracy:             0.98,
		SolveTime:            20 * time.Second,
		SolveJitter:          8 * time.Second,
		CostPerSolveMicroUSD: 1000,
	}
}

// Solvers returns the modelled solver population in table order.
func Solvers() []Solver {
	return []Solver{HumanSolver(), OCRBot(), WeakOCRBot(), SolverFarm()}
}

// Attempt runs one solve attempt: it charges the solver's time to the
// clock and returns the (possibly wrong) transcription.
func (sv Solver) Attempt(clock sim.Clock, rng *sim.Rand, ch Challenge) string {
	clock.Sleep(rng.NormalDuration(sv.SolveTime, sv.SolveJitter))
	if rng.Bool(sv.Accuracy) {
		return ch.Text
	}
	// A wrong answer: perturb one character.
	b := []byte(ch.Text)
	if len(b) > 0 {
		i := rng.Intn(len(b))
		b[i] = alphabet[rng.Intn(len(alphabet))]
		if string(b) == ch.Text {
			b[i] = b[i] ^ 1 // force difference
		}
	}
	return string(b)
}

// Run executes n challenge/solve rounds for a solver and reports the
// pass count and total (virtual) time spent.
func Run(svc *Service, sv Solver, clock sim.Clock, rng *sim.Rand, n int) (passes int, elapsed time.Duration) {
	sw := sim.NewStopwatch(clock)
	for i := 0; i < n; i++ {
		ch := svc.Issue()
		resp := sv.Attempt(clock, rng, ch)
		ok, err := svc.Answer(ch.ID, resp)
		if err == nil && ok {
			passes++
		}
	}
	return passes, sw.Elapsed()
}
