package captcha

import (
	"errors"
	"testing"

	"unitp/internal/sim"
)

func TestIssueAndAnswerCorrect(t *testing.T) {
	svc := NewService(sim.NewRand(1))
	ch := svc.Issue()
	if len(ch.Text) != challengeLen {
		t.Fatalf("challenge text %q", ch.Text)
	}
	ok, err := svc.Answer(ch.ID, ch.Text)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("correct answer graded wrong")
	}
	issued, passed, failed := svc.Stats()
	if issued != 1 || passed != 1 || failed != 0 {
		t.Fatalf("stats = %d/%d/%d", issued, passed, failed)
	}
}

func TestAnswerWrong(t *testing.T) {
	svc := NewService(sim.NewRand(2))
	ch := svc.Issue()
	ok, err := svc.Answer(ch.ID, "zzzzzz")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("wrong answer graded correct")
	}
}

func TestChallengeSingleUse(t *testing.T) {
	svc := NewService(sim.NewRand(3))
	ch := svc.Issue()
	if _, err := svc.Answer(ch.ID, ch.Text); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Answer(ch.ID, ch.Text); !errors.Is(err, ErrChallengeUnknown) {
		t.Fatalf("reuse: %v", err)
	}
	if _, err := svc.Answer(999, "x"); !errors.Is(err, ErrChallengeUnknown) {
		t.Fatalf("unknown: %v", err)
	}
}

func TestChallengesVary(t *testing.T) {
	svc := NewService(sim.NewRand(4))
	seen := make(map[string]bool)
	for i := 0; i < 50; i++ {
		seen[svc.Issue().Text] = true
	}
	if len(seen) < 45 {
		t.Fatalf("only %d distinct challenges in 50", len(seen))
	}
}

func TestChallengeAlphabet(t *testing.T) {
	svc := NewService(sim.NewRand(5))
	for i := 0; i < 20; i++ {
		for _, r := range svc.Issue().Text {
			if r == 'l' || r == 'o' || r == '0' || r == '1' || r == 'i' {
				t.Fatalf("ambiguous character %q in challenge", r)
			}
		}
	}
}

func TestSolverAccuracies(t *testing.T) {
	clock := sim.NewVirtualClock()
	rng := sim.NewRand(6)
	const n = 2000
	for _, sv := range Solvers() {
		svc := NewService(rng.Fork("svc-" + sv.Name))
		passes, elapsed := Run(svc, sv, clock, rng.Fork(sv.Name), n)
		rate := float64(passes) / n
		if rate < sv.Accuracy-0.04 || rate > sv.Accuracy+0.04 {
			t.Fatalf("%s pass rate %.3f, want ~%.2f", sv.Name, rate, sv.Accuracy)
		}
		if elapsed <= 0 {
			t.Fatalf("%s charged no time", sv.Name)
		}
		meanSolve := elapsed / n
		if meanSolve < sv.SolveTime/2 || meanSolve > sv.SolveTime*2 {
			t.Fatalf("%s mean solve %v, want ~%v", sv.Name, meanSolve, sv.SolveTime)
		}
	}
}

func TestWrongAnswersDiffer(t *testing.T) {
	// A solver that always fails must never return the correct text.
	clock := sim.NewVirtualClock()
	rng := sim.NewRand(7)
	svc := NewService(rng.Fork("svc"))
	sv := Solver{Name: "always-wrong", Accuracy: 0}
	for i := 0; i < 100; i++ {
		ch := svc.Issue()
		if sv.Attempt(clock, rng, ch) == ch.Text {
			t.Fatal("failed attempt produced correct answer")
		}
	}
}

func TestSolverShape(t *testing.T) {
	// The F4 experiment's premise: bots beat CAPTCHAs at meaningful
	// rates while humans pay tens of seconds.
	if OCRBot().Accuracy < 0.25 {
		t.Fatal("OCR bot model too weak to make the paper's point")
	}
	if HumanSolver().SolveTime < 5e9 {
		t.Fatal("human solve time implausibly fast")
	}
	if SolverFarm().CostPerSolveMicroUSD == 0 {
		t.Fatal("solver farm should have a cost")
	}
	if len(Solvers()) != 4 {
		t.Fatalf("solvers = %d", len(Solvers()))
	}
}
