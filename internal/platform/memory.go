package platform

import (
	"errors"
	"sync"
)

// ErrDMABlocked is returned when a DMA read targets a protected region.
var ErrDMABlocked = errors.New("platform: DMA blocked by device exclusion vector")

// ErrNoSuchRegion is returned for reads of undefined memory regions.
var ErrNoSuchRegion = errors.New("platform: no such memory region")

// Memory models physical memory at region granularity, with the device
// exclusion vector (DEV on AMD, VT-d on Intel) that a late launch programs
// to stop peripherals from reading PAL memory via DMA.
type Memory struct {
	mu      sync.Mutex
	regions map[string][]byte
	// protected marks regions covered by the DMA exclusion vector.
	protected map[string]bool
	// devActive is whether the exclusion vector is being enforced.
	devActive bool
}

// NewMemory returns an empty physical memory.
func NewMemory() *Memory {
	return &Memory{
		regions:   make(map[string][]byte),
		protected: make(map[string]bool),
	}
}

// Store writes a region (CPU path — always allowed for the executing
// layer; isolation between layers is enforced by the machine's execution
// model, not by the memory map).
func (m *Memory) Store(region string, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	buf := make([]byte, len(data))
	copy(buf, data)
	m.regions[region] = buf
}

// Load reads a region through the CPU path.
func (m *Memory) Load(region string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.regions[region]
	if !ok {
		return nil, ErrNoSuchRegion
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// Erase zeroes and removes a region (the PAL's secret cleanup before
// resuming the OS).
func (m *Memory) Erase(region string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if data, ok := m.regions[region]; ok {
		for i := range data {
			data[i] = 0
		}
		delete(m.regions, region)
	}
}

// Protect places a region under the DMA exclusion vector.
func (m *Memory) Protect(region string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.protected[region] = true
}

// Unprotect removes a region from the exclusion vector.
func (m *Memory) Unprotect(region string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.protected, region)
}

// SetDEVActive turns exclusion-vector enforcement on or off. A late
// launch turns it on; the security experiment's "no DMA protection"
// ablation leaves it off.
func (m *Memory) SetDEVActive(active bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.devActive = active
}

// DEVActive reports whether the exclusion vector is enforced.
func (m *Memory) DEVActive() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.devActive
}

// DMARead models a peripheral (or malware programming a peripheral)
// reading a region over the bus, bypassing the CPU. It fails for
// protected regions while the exclusion vector is enforced — and
// succeeds otherwise, which is how the F3 experiment demonstrates key
// theft when DMA protection is disabled.
func (m *Memory) DMARead(region string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.regions[region]
	if !ok {
		return nil, ErrNoSuchRegion
	}
	if m.devActive && m.protected[region] {
		return nil, ErrDMABlocked
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}
