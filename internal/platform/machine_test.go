package platform

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"unitp/internal/cryptoutil"
	"unitp/internal/sim"
	"unitp/internal/tpm"
)

// newTestMachine builds a machine with ideal TPM latencies and all
// protections (unless overridden).
func newTestMachine(t *testing.T, prot *Protections) *Machine {
	t.Helper()
	m, err := New(Config{
		Random:      sim.NewRand(42),
		Protections: prot,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestBootMeasurementsInStaticPCRs(t *testing.T) {
	m := newTestMachine(t, nil)
	for _, idx := range []int{0, 2, 4, 8} {
		v, err := m.TPM().PCRRead(idx)
		if err != nil {
			t.Fatal(err)
		}
		if v.IsZero() {
			t.Fatalf("static PCR %d empty after boot", idx)
		}
	}
	if !m.OSRunning() {
		t.Fatal("OS not running after boot")
	}
}

func TestLateLaunchHappyPath(t *testing.T) {
	m := newTestMachine(t, nil)
	image := []byte("confirmation-pal-image-v1")
	var insidePCR17 cryptoutil.Digest

	report, err := m.LateLaunch(image, func(env *LaunchEnv) error {
		v, err := env.PCRRead(tpm.PCRDRTM)
		if err != nil {
			return err
		}
		insidePCR17 = v
		return nil
	})
	if err != nil {
		t.Fatalf("LateLaunch: %v", err)
	}
	if report.PALErr != nil {
		t.Fatalf("PAL error: %v", report.PALErr)
	}
	wantInside := ExpectedPCR17(cryptoutil.SHA1(image))
	if insidePCR17 != wantInside {
		t.Fatalf("PCR17 during PAL = %v, want %v", insidePCR17, wantInside)
	}
	after, err := m.TPM().PCRRead(tpm.PCRDRTM)
	if err != nil {
		t.Fatal(err)
	}
	if want := ExpectedPCR17Capped(cryptoutil.SHA1(image)); after != want {
		t.Fatalf("PCR17 after cap = %v, want %v", after, want)
	}
	if !m.OSRunning() {
		t.Fatal("OS not resumed")
	}
	if m.Keyboard().Owner() != OwnerOS || m.Display().Owner() != OwnerOS {
		t.Fatal("devices not returned to OS")
	}
	if m.LaunchCount() != 1 {
		t.Fatalf("launch count = %d", m.LaunchCount())
	}
	if report.Measurement != cryptoutil.SHA1(image) {
		t.Fatal("report measurement wrong")
	}
}

func TestLateLaunchReportPhases(t *testing.T) {
	clock := sim.NewVirtualClock()
	m, err := New(Config{Clock: clock, Random: sim.NewRand(7)})
	if err != nil {
		t.Fatal(err)
	}
	image := bytes.Repeat([]byte{0xAA}, 4096) // 4 KiB SLB
	palWork := 5 * time.Millisecond
	report, err := m.LateLaunch(image, func(env *LaunchEnv) error {
		env.ChargeCompute(palWork)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	costs := DefaultCosts()
	if report.Suspend != costs.OSSuspend {
		t.Fatalf("suspend = %v, want %v", report.Suspend, costs.OSSuspend)
	}
	if report.SKINIT != costs.skinitCost(len(image)) {
		t.Fatalf("skinit = %v, want %v", report.SKINIT, costs.skinitCost(len(image)))
	}
	if report.PALRun != palWork {
		t.Fatalf("pal run = %v, want %v", report.PALRun, palWork)
	}
	if report.Resume != costs.OSResume {
		t.Fatalf("resume = %v, want %v", report.Resume, costs.OSResume)
	}
	if want := report.Suspend + report.SKINIT + report.PALRun + report.Resume; report.Total != want {
		t.Fatalf("total = %v, want %v", report.Total, want)
	}
}

func TestSKINITCostGrowsWithImage(t *testing.T) {
	costs := DefaultCosts()
	small := costs.skinitCost(1024)
	large := costs.skinitCost(64 * 1024)
	if large <= small {
		t.Fatalf("SKINIT cost not monotone: %v vs %v", small, large)
	}
}

func TestLateLaunchErrors(t *testing.T) {
	m := newTestMachine(t, nil)
	if _, err := m.LateLaunch(nil, func(*LaunchEnv) error { return nil }); !errors.Is(err, ErrEmptyImage) {
		t.Fatalf("empty image: %v", err)
	}
	// Nested launch.
	_, err := m.LateLaunch([]byte("outer"), func(env *LaunchEnv) error {
		_, inner := m.LateLaunch([]byte("inner"), func(*LaunchEnv) error { return nil })
		if !errors.Is(inner, ErrLaunchActive) {
			t.Fatalf("nested launch: %v", inner)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPALErrorStillCapsAndResumes(t *testing.T) {
	m := newTestMachine(t, nil)
	image := []byte("pal")
	sentinel := errors.New("pal failed")
	report, err := m.LateLaunch(image, func(*LaunchEnv) error { return sentinel })
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(report.PALErr, sentinel) {
		t.Fatalf("PALErr = %v", report.PALErr)
	}
	after, err := m.TPM().PCRRead(tpm.PCRDRTM)
	if err != nil {
		t.Fatal(err)
	}
	if want := ExpectedPCR17Capped(cryptoutil.SHA1(image)); after != want {
		t.Fatal("failed PAL session not capped")
	}
	if !m.OSRunning() {
		t.Fatal("OS not resumed after PAL failure")
	}
}

func TestEnvRevokedAfterSession(t *testing.T) {
	m := newTestMachine(t, nil)
	var stolen *LaunchEnv
	_, err := m.LateLaunch([]byte("pal"), func(env *LaunchEnv) error {
		stolen = env
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Malware that captured the env pointer must get nothing after
	// resume.
	if _, err := stolen.Unseal(&tpm.SealedBlob{}); !errors.Is(err, errRevoked) {
		t.Fatalf("post-session Unseal: %v", err)
	}
	if _, err := stolen.Extend(tpm.PCRApp, cryptoutil.Digest{}); !errors.Is(err, errRevoked) {
		t.Fatalf("post-session Extend: %v", err)
	}
	if _, err := stolen.ReadKey(); !errors.Is(err, errRevoked) {
		t.Fatalf("post-session ReadKey: %v", err)
	}
	if err := stolen.Display("x"); !errors.Is(err, errRevoked) {
		t.Fatalf("post-session Display: %v", err)
	}
	if _, err := stolen.GetRandom(8); !errors.Is(err, errRevoked) {
		t.Fatalf("post-session GetRandom: %v", err)
	}
	if _, err := stolen.LoadSecret(); !errors.Is(err, errRevoked) {
		t.Fatalf("post-session LoadSecret: %v", err)
	}
	if err := stolen.StoreSecret(nil); !errors.Is(err, errRevoked) {
		t.Fatalf("post-session StoreSecret: %v", err)
	}
	if _, err := stolen.SealCurrent([]int{0}, 0, nil); !errors.Is(err, errRevoked) {
		t.Fatalf("post-session SealCurrent: %v", err)
	}
	if _, err := stolen.Seal([]int{0}, cryptoutil.Digest{}, 0, nil); !errors.Is(err, errRevoked) {
		t.Fatalf("post-session Seal: %v", err)
	}
	if _, err := stolen.PCRRead(0); !errors.Is(err, errRevoked) {
		t.Fatalf("post-session PCRRead: %v", err)
	}
}

func TestExclusiveInputDuringLaunch(t *testing.T) {
	m := newTestMachine(t, nil)
	var logged []rune
	m.Keyboard().Observe(func(ev KeyEvent) { logged = append(logged, ev.Rune) })

	_, err := m.LateLaunch([]byte("pal"), func(env *LaunchEnv) error {
		// Malware injection path is dead while the PAL owns input.
		if err := m.Keyboard().InjectAsOS('y'); !errors.Is(err, ErrDeviceNotOwned) {
			t.Fatalf("injection during exclusive session: %v", err)
		}
		// Human presses a key; the PAL reads it, the keylogger does not
		// observe it.
		m.Keyboard().Press('y')
		ev, err := env.ReadKey()
		if err != nil {
			return err
		}
		if ev.Rune != 'y' || ev.Injected {
			t.Fatalf("PAL read = %+v", ev)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(logged) != 0 {
		t.Fatalf("keylogger captured %q during exclusive session", string(logged))
	}
}

func TestNonExclusiveInputAdmitsInjection(t *testing.T) {
	prot := AllProtections()
	prot.ExclusiveInput = false
	m := newTestMachine(t, &prot)

	_, err := m.LateLaunch([]byte("pal"), func(env *LaunchEnv) error {
		// With input left on the OS path, malware injects a fake
		// confirmation and the PAL cannot tell... except via the
		// model's Injected flag, which exists for experiments.
		if err := m.Keyboard().InjectAsOS('y'); err != nil {
			t.Fatalf("injection with shared input failed: %v", err)
		}
		ev, err := env.ReadKey()
		if err != nil {
			return err
		}
		if !ev.Injected {
			t.Fatal("injected event lost its provenance tag")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMeasuredLaunchIgnoresClaimedImage(t *testing.T) {
	m := newTestMachine(t, nil)
	real := []byte("evil-pal")
	claimed := []byte("good-pal")
	report, err := m.LateLaunch(real, func(*LaunchEnv) error { return nil },
		WithClaimedImage(claimed))
	if err != nil {
		t.Fatal(err)
	}
	if report.Measurement != cryptoutil.SHA1(real) {
		t.Fatal("measured launch did not measure the real image")
	}
}

func TestUnmeasuredLaunchAdmitsSubstitution(t *testing.T) {
	prot := AllProtections()
	prot.MeasuredLaunch = false
	m := newTestMachine(t, &prot)
	real := []byte("evil-pal")
	claimed := []byte("good-pal")
	report, err := m.LateLaunch(real, func(*LaunchEnv) error { return nil },
		WithClaimedImage(claimed))
	if err != nil {
		t.Fatal(err)
	}
	if report.Measurement != cryptoutil.SHA1(claimed) {
		t.Fatal("TOCTOU substitution did not take effect with measurement off")
	}
	after, err := m.TPM().PCRRead(tpm.PCRDRTM)
	if err != nil {
		t.Fatal(err)
	}
	if after != ExpectedPCR17Capped(cryptoutil.SHA1(claimed)) {
		t.Fatal("PCR17 does not reflect the claimed (forged) measurement")
	}
}

func TestDMAProtectionDuringLaunch(t *testing.T) {
	m := newTestMachine(t, nil)
	_, err := m.LateLaunch([]byte("pal"), func(env *LaunchEnv) error {
		if err := env.StoreSecret([]byte("session key")); err != nil {
			return err
		}
		// Peripheral DMA read must be blocked mid-session.
		if _, err := m.Memory().DMARead(palMemoryRegion); !errors.Is(err, ErrDMABlocked) {
			t.Fatalf("DMA during protected session: %v", err)
		}
		got, err := env.LoadSecret()
		if err != nil {
			return err
		}
		if string(got) != "session key" {
			t.Fatal("PAL could not read its own secret")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// After resume the region is erased.
	if _, err := m.Memory().Load(palMemoryRegion); !errors.Is(err, ErrNoSuchRegion) {
		t.Fatalf("PAL memory survived resume: %v", err)
	}
}

func TestNoDMAProtectionLeaksSecrets(t *testing.T) {
	prot := AllProtections()
	prot.DMAProtection = false
	m := newTestMachine(t, &prot)
	var leaked []byte
	_, err := m.LateLaunch([]byte("pal"), func(env *LaunchEnv) error {
		if err := env.StoreSecret([]byte("session key")); err != nil {
			return err
		}
		data, err := m.Memory().DMARead(palMemoryRegion)
		if err != nil {
			t.Fatalf("DMA with protection off: %v", err)
		}
		leaked = data
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(leaked) != "session key" {
		t.Fatal("expected DMA leak did not happen")
	}
}

func TestLocalityGating(t *testing.T) {
	m := newTestMachine(t, nil)
	if got := m.AssertLocality(4); got != 0 {
		t.Fatalf("gated platform granted locality %d", got)
	}
	prot := AllProtections()
	prot.LocalityGating = false
	broken := newTestMachine(t, &prot)
	if got := broken.AssertLocality(4); got != 4 {
		t.Fatalf("ungated platform granted locality %d, want 4", got)
	}
	// On the broken platform the OS can fake a DRTM state.
	if err := broken.TPM().PCRReset(broken.AssertLocality(4), tpm.PCRDRTM); err != nil {
		t.Fatalf("forged locality-4 reset: %v", err)
	}
}

func TestWaitKeyUsesPump(t *testing.T) {
	m := newTestMachine(t, nil)
	pumped := 0
	m.SetInputPump(func() bool {
		pumped++
		if pumped > 1 {
			return false
		}
		m.Clock().Sleep(800 * time.Millisecond) // human reaction time
		m.Keyboard().Press('y')
		return true
	})
	_, err := m.LateLaunch([]byte("pal"), func(env *LaunchEnv) error {
		ev, err := env.WaitKey()
		if err != nil {
			return err
		}
		if ev.Rune != 'y' {
			t.Fatalf("WaitKey = %+v", ev)
		}
		// Second wait: pump is exhausted.
		if _, err := env.WaitKey(); !errors.Is(err, ErrNoInput) {
			t.Fatalf("exhausted pump: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if pumped != 3 { // one delivery + two refusals (second WaitKey asks once)
		t.Logf("pump called %d times", pumped)
	}
}

func TestWaitKeyNoPump(t *testing.T) {
	m := newTestMachine(t, nil)
	_, err := m.LateLaunch([]byte("pal"), func(env *LaunchEnv) error {
		if _, err := env.WaitKey(); !errors.Is(err, ErrNoInput) {
			t.Fatalf("WaitKey without pump: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPALDisplayDuringExclusiveSession(t *testing.T) {
	m := newTestMachine(t, nil)
	_, err := m.LateLaunch([]byte("pal"), func(env *LaunchEnv) error {
		return env.Display("Confirm transfer of EUR 100 to DE89...? [y/n]")
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := m.Display().Lines()
	if len(lines) != 1 || lines[0].By != OwnerPAL {
		t.Fatalf("display lines = %+v", lines)
	}
}

func TestEnvSealUnsealAtLocality2(t *testing.T) {
	m := newTestMachine(t, nil)
	image := []byte("pal")
	var blob *tpm.SealedBlob
	_, err := m.LateLaunch(image, func(env *LaunchEnv) error {
		b, err := env.SealCurrent([]int{tpm.PCRDRTM}, tpm.MaskOf(2), []byte("persisted"))
		if err != nil {
			return err
		}
		blob = b
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// After the cap, even the same locality cannot unseal (PCR changed).
	if _, err := m.TPM().Unseal(2, blob); !errors.Is(err, tpm.ErrWrongPCRState) {
		t.Fatalf("unseal after cap: %v", err)
	}
	// A fresh launch of the same PAL reaches the same pre-cap state and
	// can unseal.
	_, err = m.LateLaunch(image, func(env *LaunchEnv) error {
		got, err := env.Unseal(blob)
		if err != nil {
			return err
		}
		if string(got) != "persisted" {
			t.Fatal("wrong unsealed data")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMachineAccessors(t *testing.T) {
	m := newTestMachine(t, nil)
	if m.Clock() == nil || m.Random() == nil || m.TPM() == nil {
		t.Fatal("nil accessor")
	}
	if m.Costs().OSSuspend == 0 {
		t.Fatal("zero cost model")
	}
	if !m.Protections().MeasuredLaunch {
		t.Fatal("default protections not all-on")
	}
	if m.OSLocality() != 0 {
		t.Fatal("OS locality != 0")
	}
}
