// Package platform simulates the client hardware the paper's system runs
// on: a CPU with DRTM late launch (AMD SKINIT / Intel TXT semantics), a
// TPM attached through locality-enforcing chipset logic, physical memory
// with a DMA exclusion vector, and PS/2-style input plus a text display
// whose ownership transfers between the OS and a late-launched PAL.
//
// Hardware substitution (see DESIGN.md): a Go process cannot execute
// SKINIT, so Machine.LateLaunch reproduces its contract — atomic
// measurement of the launched code into a locality-4-reset PCR 17,
// interrupts/OS frozen, DMA protection, exclusive device ownership — as
// checkable simulation state. Each protection can be disabled
// individually, which is how the security evaluation (experiment F3)
// demonstrates that every property is load-bearing.
package platform

import (
	"errors"
	"fmt"
	"time"

	"unitp/internal/cryptoutil"
	"unitp/internal/sim"
	"unitp/internal/tpm"
)

// Protections lists the platform security properties a genuine
// DRTM-capable machine provides. The default is all-on; the security
// evaluation toggles them off one at a time.
type Protections struct {
	// MeasuredLaunch: the CPU hashes the actual launched code into
	// PCR 17. Off models a TOCTOU-style flaw where the attacker
	// substitutes the code after measurement (the machine then extends
	// the *claimed* image while running the supplied function).
	MeasuredLaunch bool

	// ExclusiveInput: keyboard ownership transfers to the PAL for the
	// duration of the launch. Off models input that remains routed
	// through (and injectable by) the OS — the property whose absence
	// re-admits transaction generators.
	ExclusiveInput bool

	// ExclusiveDisplay: display ownership transfers to the PAL.
	ExclusiveDisplay bool

	// DMAProtection: the launch programs the device exclusion vector
	// over PAL memory. Off lets peripherals (malware-programmed) read
	// PAL secrets.
	DMAProtection bool

	// LocalityGating: the chipset refuses locality assertions above the
	// caller's privilege; only the CPU's DRTM microcode reaches
	// locality 4. Off models a chipset flaw letting the OS reset the
	// DRTM PCRs itself.
	LocalityGating bool
}

// AllProtections returns the full protection set of a correct platform.
func AllProtections() Protections {
	return Protections{
		MeasuredLaunch:   true,
		ExclusiveInput:   true,
		ExclusiveDisplay: true,
		DMAProtection:    true,
		LocalityGating:   true,
	}
}

// CostModel holds the modelled latencies of the late-launch machinery
// itself (the TPM's own command costs live in the tpm.Profile).
// Defaults are era-plausible: Flicker reports OS suspend/resume in the
// tens of milliseconds and SKINIT time growing with SLB size because the
// CPU streams the image to the TPM over the slow LPC bus.
type CostModel struct {
	// OSSuspend is the cost of quiescing the OS before SKINIT.
	OSSuspend time.Duration

	// OSResume is the cost of resuming the OS afterwards.
	OSResume time.Duration

	// SKINITBase is the fixed cost of the SKINIT instruction.
	SKINITBase time.Duration

	// SKINITPerKB is the additional cost per KiB of launched image.
	SKINITPerKB time.Duration
}

// DefaultCosts returns the default late-launch cost model.
func DefaultCosts() CostModel {
	return CostModel{
		OSSuspend:   31 * time.Millisecond,
		OSResume:    29 * time.Millisecond,
		SKINITBase:  12 * time.Millisecond,
		SKINITPerKB: 2600 * time.Microsecond,
	}
}

// skinitCost returns the modelled SKINIT duration for an image size.
func (c CostModel) skinitCost(imageLen int) time.Duration {
	kb := (imageLen + 1023) / 1024
	return c.SKINITBase + time.Duration(kb)*c.SKINITPerKB
}

// CapDigest is the well-known value extended into PCR 17 when a PAL
// session ends, so that the post-session PCR state proves "the PAL ran
// AND exited" — secrets sealed to the pre-cap state become inaccessible
// the instant the OS resumes.
var CapDigest = cryptoutil.SHA1([]byte("unitp.platform.session-cap.v1"))

// ExpectedPCR17 returns the PCR 17 value immediately after a genuine late
// launch of an image with the given measurement (while the PAL runs),
// on a SKINIT platform (no SINIT chain).
func ExpectedPCR17(imageMeasurement cryptoutil.Digest) cryptoutil.Digest {
	return cryptoutil.ExtendDigest(cryptoutil.Digest{}, imageMeasurement)
}

// ExpectedPCR17Capped returns the PCR 17 value after the session cap —
// the value a verifier expects to see quoted (SKINIT platform).
func ExpectedPCR17Capped(imageMeasurement cryptoutil.Digest) cryptoutil.Digest {
	return cryptoutil.ExtendDigest(ExpectedPCR17(imageMeasurement), CapDigest)
}

// ExpectedPCR17Chain returns the dynamic PCR value after a launch that
// measures the given chain in order (TXT: SINIT then PAL).
func ExpectedPCR17Chain(measurements ...cryptoutil.Digest) cryptoutil.Digest {
	var v cryptoutil.Digest
	for _, m := range measurements {
		v = cryptoutil.ExtendDigest(v, m)
	}
	return v
}

// ExpectedPCR17ChainCapped returns the capped form of
// ExpectedPCR17Chain.
func ExpectedPCR17ChainCapped(measurements ...cryptoutil.Digest) cryptoutil.Digest {
	return cryptoutil.ExtendDigest(ExpectedPCR17Chain(measurements...), CapDigest)
}

// Platform errors.
var (
	// ErrLaunchActive is returned when a late launch is attempted while
	// one is already in progress.
	ErrLaunchActive = errors.New("platform: late launch already active")

	// ErrOSNotRunning is returned for OS-path operations while the OS is
	// suspended.
	ErrOSNotRunning = errors.New("platform: OS not running")

	// ErrEmptyImage is returned when a late launch is given no code.
	ErrEmptyImage = errors.New("platform: empty launch image")
)

// InputPump is asked for input when a PAL waits on an empty keyboard
// queue. It returns true if it delivered at least one event (typically a
// simulated human charging reaction time to the clock before pressing a
// key), false if no input will arrive.
type InputPump func() bool

// Config configures a Machine. Zero-value fields get defaults: ideal TPM
// profile, fresh virtual clock, deterministic randomness, all protections
// on, default cost model.
type Config struct {
	// Clock drives every latency in the machine.
	Clock sim.Clock

	// Random seeds the machine's entropy.
	Random *sim.Rand

	// TPMProfile selects the TPM vendor latency model.
	TPMProfile tpm.Profile

	// Keys supplies the TPM's EK/AIK keys.
	Keys tpm.KeySource

	// Protections selects which platform security properties hold; nil
	// means all.
	Protections *Protections

	// Costs overrides the late-launch cost model; nil means defaults.
	Costs *CostModel

	// SINITImage, when set, switches the DRTM model from AMD SKINIT to
	// Intel TXT semantics: the authenticated code module is measured
	// into the dynamic PCR before the launched code, so the PAL's
	// quoted identity is the (SINIT, PAL) chain. Verifiers approve such
	// platforms with ApprovePALChain.
	SINITImage []byte
}

// Machine is one simulated client platform.
type Machine struct {
	clock       sim.Clock
	rng         *sim.Rand
	dev         *tpm.TPM
	keyboard    *Keyboard
	display     *Display
	memory      *Memory
	protections Protections
	costs       CostModel
	pump        InputPump
	sinit       []byte

	osRunning    bool
	launchActive bool
	launchCount  int
}

// New builds and boots a machine: the TPM is started and the static PCRs
// receive a simulated measured-boot chain (BIOS, bootloader, OS) so that
// the static state looks like a real platform's.
func New(cfg Config) (*Machine, error) {
	if cfg.Clock == nil {
		cfg.Clock = sim.NewVirtualClock()
	}
	if cfg.Random == nil {
		cfg.Random = sim.NewRand(1)
	}
	prot := AllProtections()
	if cfg.Protections != nil {
		prot = *cfg.Protections
	}
	costs := DefaultCosts()
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}
	dev, err := tpm.New(tpm.Config{
		Profile: cfg.TPMProfile,
		Clock:   cfg.Clock,
		Random:  cfg.Random.Fork("tpm-entropy"),
		Keys:    cfg.Keys,
	})
	if err != nil {
		return nil, fmt.Errorf("platform: create TPM: %w", err)
	}
	if err := dev.Startup(); err != nil {
		return nil, fmt.Errorf("platform: TPM startup: %w", err)
	}
	m := &Machine{
		clock:       cfg.Clock,
		rng:         cfg.Random,
		dev:         dev,
		keyboard:    NewKeyboard(cfg.Clock),
		display:     NewDisplay(cfg.Clock),
		memory:      NewMemory(),
		protections: prot,
		costs:       costs,
		sinit:       append([]byte{}, cfg.SINITImage...),
		osRunning:   true,
	}
	// Simulated SRTM measured boot into the static PCRs.
	for _, boot := range bootMeasurements() {
		if _, err := dev.Extend(0, boot.pcr, cryptoutil.SHA1([]byte(boot.what))); err != nil {
			return nil, fmt.Errorf("platform: boot measurement: %w", err)
		}
	}
	return m, nil
}

// Clock returns the machine's clock.
func (m *Machine) Clock() sim.Clock { return m.clock }

// Random returns the machine's deterministic random source.
func (m *Machine) Random() *sim.Rand { return m.rng }

// TPM returns the machine's TPM device.
func (m *Machine) TPM() *tpm.TPM { return m.dev }

// Keyboard returns the machine's keyboard.
func (m *Machine) Keyboard() *Keyboard { return m.keyboard }

// Display returns the machine's display.
func (m *Machine) Display() *Display { return m.display }

// Memory returns the machine's physical memory model.
func (m *Machine) Memory() *Memory { return m.memory }

// Protections returns the active protection set.
func (m *Machine) Protections() Protections { return m.protections }

// Costs returns the late-launch cost model.
func (m *Machine) Costs() CostModel { return m.costs }

// OSRunning reports whether the commodity OS is currently scheduled.
func (m *Machine) OSRunning() bool { return m.osRunning }

// LaunchCount reports how many late launches have completed.
func (m *Machine) LaunchCount() int { return m.launchCount }

// SetInputPump registers the callback a waiting PAL uses to solicit human
// input (see InputPump).
func (m *Machine) SetInputPump(p InputPump) { m.pump = p }

// OSLocality returns the TPM locality OS-level software commands arrive
// at: locality 0 on a correct platform.
func (m *Machine) OSLocality() tpm.Locality { return 0 }

// LaunchChain returns the measurement chain a genuine launch of an
// image with the given measurement produces on this platform — just the
// image on SKINIT, (SINIT, image) on TXT.
func (m *Machine) LaunchChain(imageMeasurement cryptoutil.Digest) []cryptoutil.Digest {
	if len(m.sinit) > 0 {
		return []cryptoutil.Digest{cryptoutil.SHA1(m.sinit), imageMeasurement}
	}
	return []cryptoutil.Digest{imageMeasurement}
}

// LaunchIdentity returns the pre-cap dynamic PCR value a genuine launch
// of the image reaches on this platform — the state sealed blobs for
// that PAL must target.
func (m *Machine) LaunchIdentity(imageMeasurement cryptoutil.Digest) cryptoutil.Digest {
	return ExpectedPCR17Chain(m.LaunchChain(imageMeasurement)...)
}

// AssertLocality models software asking the chipset for an elevated
// locality. With LocalityGating on (correct hardware) the request is
// clamped to locality 0; with it off the attacker gets what they asked
// for — the chipset-flaw ablation of experiment F3.
func (m *Machine) AssertLocality(want tpm.Locality) tpm.Locality {
	if m.protections.LocalityGating {
		return 0
	}
	return want
}

// Reboot power-cycles the platform: the TPM restarts (volatile PCR
// state cleared; keys, NV storage, and monotonic counters persist, as
// on real hardware), the measured-boot chain re-extends into the static
// PCRs, devices return to the OS, and the OS comes back up. A reboot
// during a late launch is refused — the simulator has no model for
// tearing power out from under a PAL mid-session.
func (m *Machine) Reboot() error {
	if m.launchActive {
		return ErrLaunchActive
	}
	m.clock.Sleep(m.costs.OSSuspend) // shutdown quiesce
	if err := m.dev.Startup(); err != nil {
		return fmt.Errorf("platform: reboot TPM startup: %w", err)
	}
	for _, boot := range bootMeasurements() {
		if _, err := m.dev.Extend(0, boot.pcr, cryptoutil.SHA1([]byte(boot.what))); err != nil {
			return fmt.Errorf("platform: reboot measurement: %w", err)
		}
	}
	m.keyboard.setOwner(OwnerOS)
	m.display.setOwner(OwnerOS)
	m.memory.SetDEVActive(false)
	m.clock.Sleep(m.costs.OSResume) // boot
	m.osRunning = true
	return nil
}

// bootMeasurement is one SRTM measured-boot entry.
type bootMeasurement struct {
	pcr  int
	what string
}

// bootMeasurements is the simulated SRTM chain.
func bootMeasurements() []bootMeasurement {
	return []bootMeasurement{
		{0, "BIOS-1.02"},
		{2, "OptionROMs"},
		{4, "MBR+bootloader"},
		{8, "commodity-os-kernel"},
	}
}

// palMemoryRegion is the region name holding PAL runtime secrets.
const palMemoryRegion = "pal-secrets"

// LaunchOption customizes a late launch (attack modelling).
type LaunchOption func(*launchOpts)

type launchOpts struct {
	claimedImage []byte
}

// WithClaimedImage supplies a different image for measurement than the
// code that actually runs — the TOCTOU substitution only possible when
// MeasuredLaunch is off. With MeasuredLaunch on, the option is ignored
// and the actual image is measured, exactly as SKINIT guarantees.
func WithClaimedImage(image []byte) LaunchOption {
	return func(o *launchOpts) {
		o.claimedImage = append([]byte{}, image...)
	}
}

// LaunchReport breaks down one late-launch session for experiment T2.
type LaunchReport struct {
	// Measurement is the digest extended into PCR 17.
	Measurement cryptoutil.Digest

	// Suspend, SKINIT, PALRun, Resume are per-phase durations; PALRun
	// includes the TPM commands the PAL issued.
	Suspend time.Duration
	SKINIT  time.Duration
	PALRun  time.Duration
	Resume  time.Duration

	// Total is the end-to-end session duration.
	Total time.Duration

	// PALErr is the error the PAL function returned, if any (the
	// session still caps and resumes).
	PALErr error
}

// LateLaunch performs a DRTM late launch of image, runs fn inside the
// isolated environment, caps the session, and resumes the OS. The
// sequence reproduces SKINIT's contract point by point:
//
//  1. The OS is suspended (no code but the PAL runs until resume).
//  2. Devices transfer to the PAL (per the protection set).
//  3. PAL memory goes under the DMA exclusion vector.
//  4. The dynamic PCRs are reset at locality 4 and the image measurement
//     is extended into PCR 17 — unforgeable from any other locality.
//  5. fn runs with a locality-2 environment.
//  6. CapDigest is extended into PCR 17, PAL memory is erased, devices
//     and control return to the OS.
func (m *Machine) LateLaunch(image []byte, fn func(*LaunchEnv) error, opts ...LaunchOption) (*LaunchReport, error) {
	if m.launchActive {
		return nil, ErrLaunchActive
	}
	if !m.osRunning {
		return nil, ErrOSNotRunning
	}
	if len(image) == 0 {
		return nil, ErrEmptyImage
	}
	var o launchOpts
	for _, opt := range opts {
		opt(&o)
	}

	report := &LaunchReport{}
	total := sim.NewStopwatch(m.clock)
	phase := sim.NewStopwatch(m.clock)

	// Phase 1: suspend the OS.
	m.launchActive = true
	m.osRunning = false
	m.clock.Sleep(m.costs.OSSuspend)
	report.Suspend = phase.Restart()

	// Phase 2+3: device ownership and DMA protection.
	if m.protections.ExclusiveInput {
		m.keyboard.setOwner(OwnerPAL)
	}
	if m.protections.ExclusiveDisplay {
		m.display.setOwner(OwnerPAL)
	}
	if m.protections.DMAProtection {
		m.memory.Protect(palMemoryRegion)
		m.memory.SetDEVActive(true)
	}

	// Phase 4: SKINIT — dynamic PCR reset at locality 4, then measure.
	m.clock.Sleep(m.costs.skinitCost(len(image)))
	// The CPU resets the locality-4 registers (17-20); the launched
	// environment resets its own registers (21-22) at locality 2,
	// mirroring the TXT split.
	for _, idx := range tpm.DynamicPCRs() {
		err := m.dev.PCRReset(4, idx)
		if errors.Is(err, tpm.ErrPCRNotResettable) {
			err = m.dev.PCRReset(2, idx)
		}
		if err != nil {
			m.abortLaunch()
			return nil, fmt.Errorf("platform: DRTM PCR reset: %w", err)
		}
	}
	// TXT platforms measure the SINIT ACM before the launched code.
	if len(m.sinit) > 0 {
		if _, err := m.dev.Extend(4, tpm.PCRDRTM, cryptoutil.SHA1(m.sinit)); err != nil {
			m.abortLaunch()
			return nil, fmt.Errorf("platform: SINIT measurement extend: %w", err)
		}
	}
	measured := image
	if !m.protections.MeasuredLaunch && o.claimedImage != nil {
		measured = o.claimedImage
	}
	report.Measurement = cryptoutil.SHA1(measured)
	if _, err := m.dev.Extend(4, tpm.PCRDRTM, report.Measurement); err != nil {
		m.abortLaunch()
		return nil, fmt.Errorf("platform: DRTM measurement extend: %w", err)
	}
	report.SKINIT = phase.Restart()

	// Phase 5: run the PAL.
	env := &LaunchEnv{machine: m}
	report.PALErr = fn(env)
	env.revoked = true
	report.PALRun = phase.Restart()

	// Phase 6: cap, scrub, resume.
	if _, err := m.dev.Extend(2, tpm.PCRDRTM, CapDigest); err != nil {
		m.abortLaunch()
		return nil, fmt.Errorf("platform: session cap extend: %w", err)
	}
	m.memory.Erase(palMemoryRegion)
	m.memory.SetDEVActive(false)
	m.memory.Unprotect(palMemoryRegion)
	m.keyboard.setOwner(OwnerOS)
	m.display.setOwner(OwnerOS)
	m.clock.Sleep(m.costs.OSResume)
	m.osRunning = true
	m.launchActive = false
	m.launchCount++
	report.Resume = phase.Restart()
	report.Total = total.Elapsed()
	return report, nil
}

// abortLaunch restores OS control after an internal launch failure.
func (m *Machine) abortLaunch() {
	m.memory.Erase(palMemoryRegion)
	m.memory.SetDEVActive(false)
	m.memory.Unprotect(palMemoryRegion)
	m.keyboard.setOwner(OwnerOS)
	m.display.setOwner(OwnerOS)
	m.osRunning = true
	m.launchActive = false
}

// LaunchEnv is the execution environment handed to PAL code: locality-2
// TPM access, exclusive devices (per the protection set), protected
// scratch memory, and the clock for charging compute time. It is valid
// only for the duration of the launch.
type LaunchEnv struct {
	machine *Machine
	revoked bool
}

// errRevoked reports use of an environment after its session ended.
var errRevoked = errors.New("platform: launch environment used after session end")

func (e *LaunchEnv) check() error {
	if e.revoked {
		return errRevoked
	}
	return nil
}

// Locality returns the TPM locality of the late-launched environment.
func (e *LaunchEnv) Locality() tpm.Locality { return 2 }

// LaunchIdentity returns the pre-cap dynamic PCR value a genuine launch
// of an image with the given measurement reaches on this platform
// (accounting for a SINIT chain). PALs use it to seal secrets to other
// PALs' identities portably across DRTM flavours.
func (e *LaunchEnv) LaunchIdentity(imageMeasurement cryptoutil.Digest) cryptoutil.Digest {
	return e.machine.LaunchIdentity(imageMeasurement)
}

// Clock returns the machine clock (for charging modelled PAL compute).
func (e *LaunchEnv) Clock() sim.Clock { return e.machine.clock }

// ChargeCompute advances the clock by the modelled cost of PAL-internal
// computation.
func (e *LaunchEnv) ChargeCompute(d time.Duration) {
	if e.check() == nil {
		e.machine.clock.Sleep(d)
	}
}

// Extend extends a PCR at locality 2.
func (e *LaunchEnv) Extend(idx int, d cryptoutil.Digest) (cryptoutil.Digest, error) {
	if err := e.check(); err != nil {
		return cryptoutil.Digest{}, err
	}
	return e.machine.dev.Extend(2, idx, d)
}

// ResetPCR resets a PCR at locality 2 (subject to the TPM's per-PCR
// policy). The confirmation PAL resets the application PCR at session
// start so its output binding is deterministic.
func (e *LaunchEnv) ResetPCR(idx int) error {
	if err := e.check(); err != nil {
		return err
	}
	return e.machine.dev.PCRReset(2, idx)
}

// PCRRead reads a PCR.
func (e *LaunchEnv) PCRRead(idx int) (cryptoutil.Digest, error) {
	if err := e.check(); err != nil {
		return cryptoutil.Digest{}, err
	}
	return e.machine.dev.PCRRead(idx)
}

// Unseal unseals a blob at locality 2 (subject to its policy).
func (e *LaunchEnv) Unseal(blob *tpm.SealedBlob) ([]byte, error) {
	if err := e.check(); err != nil {
		return nil, err
	}
	return e.machine.dev.Unseal(2, blob)
}

// Seal seals data at locality 2.
func (e *LaunchEnv) Seal(selection []int, releaseComposite cryptoutil.Digest, releaseLocalities tpm.LocalityMask, data []byte) (*tpm.SealedBlob, error) {
	if err := e.check(); err != nil {
		return nil, err
	}
	return e.machine.dev.Seal(2, selection, releaseComposite, releaseLocalities, data)
}

// SealCurrent seals data to the current values of the selected PCRs at
// locality 2.
func (e *LaunchEnv) SealCurrent(selection []int, releaseLocalities tpm.LocalityMask, data []byte) (*tpm.SealedBlob, error) {
	if err := e.check(); err != nil {
		return nil, err
	}
	return e.machine.dev.SealCurrent(2, selection, releaseLocalities, data)
}

// GetRandom draws entropy from the TPM.
func (e *LaunchEnv) GetRandom(n int) ([]byte, error) {
	if err := e.check(); err != nil {
		return nil, err
	}
	return e.machine.dev.GetRandom(n)
}

// Display writes a line to the screen as the PAL. If the protection set
// left the display with the OS, the write fails — surfaced, not hidden,
// because the PAL must know it has no output channel.
func (e *LaunchEnv) Display(text string) error {
	if err := e.check(); err != nil {
		return err
	}
	return e.machine.display.Write(OwnerPAL, text)
}

// ReadKey pops one pending keystroke, reading as the PAL. With exclusive
// input the PAL polls the controller directly; without it the read fails
// (the PAL does not own the device) and the caller must fall back to
// OS-mediated input — the degraded mode experiment F3 exploits.
func (e *LaunchEnv) ReadKey() (KeyEvent, error) {
	if err := e.check(); err != nil {
		return KeyEvent{}, err
	}
	owner := OwnerPAL
	if !e.machine.protections.ExclusiveInput {
		owner = OwnerOS
	}
	return e.machine.keyboard.Read(owner)
}

// WaitKey reads a keystroke, soliciting the input pump (the simulated
// human) when the queue is empty. It fails with ErrNoInput when the pump
// is exhausted or absent.
func (e *LaunchEnv) WaitKey() (KeyEvent, error) {
	for {
		ev, err := e.ReadKey()
		if err == nil {
			return ev, nil
		}
		if !errors.Is(err, ErrNoInput) {
			return KeyEvent{}, err
		}
		if e.machine.pump == nil || !e.machine.pump() {
			return KeyEvent{}, ErrNoInput
		}
	}
}

// StoreSecret places data in the DMA-protected PAL memory region.
func (e *LaunchEnv) StoreSecret(data []byte) error {
	if err := e.check(); err != nil {
		return err
	}
	e.machine.memory.Store(palMemoryRegion, data)
	return nil
}

// LoadSecret reads back the PAL memory region.
func (e *LaunchEnv) LoadSecret() ([]byte, error) {
	if err := e.check(); err != nil {
		return nil, err
	}
	return e.machine.memory.Load(palMemoryRegion)
}
