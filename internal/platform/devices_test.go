package platform

import (
	"errors"
	"testing"

	"unitp/internal/sim"
)

func TestKeyboardPressAndRead(t *testing.T) {
	clock := sim.NewVirtualClock()
	kb := NewKeyboard(clock)
	if kb.Owner() != OwnerOS {
		t.Fatalf("initial owner = %v", kb.Owner())
	}
	kb.Press('y')
	clock.Sleep(1)
	kb.Press('n')
	if kb.Pending() != 2 {
		t.Fatalf("pending = %d", kb.Pending())
	}
	ev, err := kb.Read(OwnerOS)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Rune != 'y' || ev.Injected {
		t.Fatalf("first event = %+v", ev)
	}
	ev2, err := kb.Read(OwnerOS)
	if err != nil {
		t.Fatal(err)
	}
	if !ev2.At.After(ev.At) {
		t.Fatal("timestamps not ordered")
	}
	if _, err := kb.Read(OwnerOS); !errors.Is(err, ErrNoInput) {
		t.Fatalf("empty read: %v", err)
	}
}

func TestKeyboardOwnershipBlocksReads(t *testing.T) {
	kb := NewKeyboard(sim.NewVirtualClock())
	kb.Press('x')
	if _, err := kb.Read(OwnerPAL); !errors.Is(err, ErrDeviceNotOwned) {
		t.Fatalf("PAL read while OS owns: %v", err)
	}
	kb.setOwner(OwnerPAL)
	// Ownership transfer flushes the queue: pre-transfer input never
	// leaks into the PAL session.
	if _, err := kb.Read(OwnerPAL); !errors.Is(err, ErrNoInput) {
		t.Fatalf("stale event survived ownership transfer: %v", err)
	}
	kb.Press('y')
	ev, err := kb.Read(OwnerPAL)
	if err != nil || ev.Rune != 'y' {
		t.Fatalf("PAL read = %+v, %v", ev, err)
	}
	if _, err := kb.Read(OwnerOS); !errors.Is(err, ErrDeviceNotOwned) {
		t.Fatalf("OS read while PAL owns: %v", err)
	}
}

func TestKeyboardObserverSeesOnlyOSOwnedEvents(t *testing.T) {
	kb := NewKeyboard(sim.NewVirtualClock())
	var logged []rune
	kb.Observe(func(ev KeyEvent) { logged = append(logged, ev.Rune) })

	kb.Press('a') // OS owns: keylogger sees it
	kb.setOwner(OwnerPAL)
	kb.Press('s') // PAL owns: keylogger must NOT see it
	kb.Press('3')
	kb.setOwner(OwnerOS)
	kb.Press('b') // OS owns again

	if got, want := string(logged), "ab"; got != want {
		t.Fatalf("keylogger saw %q, want %q", got, want)
	}
}

func TestKeyboardInjectionRequiresOSOwnership(t *testing.T) {
	kb := NewKeyboard(sim.NewVirtualClock())
	if err := kb.InjectAsOS('y'); err != nil {
		t.Fatalf("inject while OS owns: %v", err)
	}
	ev, err := kb.Read(OwnerOS)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Injected {
		t.Fatal("injected event not flagged")
	}
	kb.setOwner(OwnerPAL)
	if err := kb.InjectAsOS('y'); !errors.Is(err, ErrDeviceNotOwned) {
		t.Fatalf("inject while PAL owns: %v", err)
	}
}

func TestDisplayOwnershipAndLines(t *testing.T) {
	clock := sim.NewVirtualClock()
	d := NewDisplay(clock)
	if err := d.Write(OwnerOS, "os line"); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(OwnerPAL, "pal line"); !errors.Is(err, ErrDeviceNotOwned) {
		t.Fatalf("PAL write while OS owns: %v", err)
	}
	d.setOwner(OwnerPAL)
	if err := d.Write(OwnerPAL, "confirm tx?"); err != nil {
		t.Fatal(err)
	}
	lines := d.Lines()
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0].By != OwnerOS || lines[1].By != OwnerPAL {
		t.Fatalf("line origins = %v, %v", lines[0].By, lines[1].By)
	}
	if err := d.Clear(OwnerPAL); err != nil {
		t.Fatal(err)
	}
	if len(d.Lines()) != 0 {
		t.Fatal("clear did not empty display")
	}
	if err := d.Clear(OwnerOS); !errors.Is(err, ErrDeviceNotOwned) {
		t.Fatalf("OS clear while PAL owns: %v", err)
	}
}

func TestDisplayLinesCopies(t *testing.T) {
	d := NewDisplay(sim.NewVirtualClock())
	if err := d.Write(OwnerOS, "a"); err != nil {
		t.Fatal(err)
	}
	lines := d.Lines()
	lines[0].Text = "tampered"
	if d.Lines()[0].Text != "a" {
		t.Fatal("Lines exposed internal slice")
	}
}

func TestDeviceOwnerString(t *testing.T) {
	if OwnerOS.String() != "OS" || OwnerPAL.String() != "PAL" {
		t.Fatal("owner names wrong")
	}
	if DeviceOwner(0).String() != "unknown" {
		t.Fatal("zero owner not unknown")
	}
}

func TestMemoryStoreLoadErase(t *testing.T) {
	m := NewMemory()
	m.Store("r", []byte{1, 2, 3})
	got, err := m.Load("r")
	if err != nil {
		t.Fatal(err)
	}
	got[0] = 99
	again, err := m.Load("r")
	if err != nil {
		t.Fatal(err)
	}
	if again[0] != 1 {
		t.Fatal("Load exposed internal storage")
	}
	m.Erase("r")
	if _, err := m.Load("r"); !errors.Is(err, ErrNoSuchRegion) {
		t.Fatalf("load after erase: %v", err)
	}
	m.Erase("never-existed") // must not panic
}

func TestMemoryDMAProtection(t *testing.T) {
	m := NewMemory()
	m.Store("pal", []byte("session key"))

	// No exclusion vector: DMA succeeds (the attack).
	got, err := m.DMARead("pal")
	if err != nil {
		t.Fatalf("DMA with DEV inactive: %v", err)
	}
	if string(got) != "session key" {
		t.Fatal("DMA returned wrong data")
	}

	// Protected + active: blocked.
	m.Protect("pal")
	m.SetDEVActive(true)
	if !m.DEVActive() {
		t.Fatal("DEV not active")
	}
	if _, err := m.DMARead("pal"); !errors.Is(err, ErrDMABlocked) {
		t.Fatalf("DMA with DEV active: %v", err)
	}

	// Other regions stay DMA-readable even while DEV is active.
	m.Store("os", []byte("os data"))
	if _, err := m.DMARead("os"); err != nil {
		t.Fatalf("DMA of unprotected region: %v", err)
	}

	// Unprotect: readable again.
	m.Unprotect("pal")
	if _, err := m.DMARead("pal"); err != nil {
		t.Fatalf("DMA after unprotect: %v", err)
	}
	if _, err := m.DMARead("ghost"); !errors.Is(err, ErrNoSuchRegion) {
		t.Fatalf("DMA of missing region: %v", err)
	}
}
