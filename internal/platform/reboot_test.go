package platform

import (
	"errors"
	"testing"

	"unitp/internal/cryptoutil"
	"unitp/internal/tpm"
)

func TestRebootResetsVolatileState(t *testing.T) {
	m := newTestMachine(t, nil)
	image := []byte("pal")
	// Dirty the dynamic and application PCRs via a session.
	if _, err := m.LateLaunch(image, func(env *LaunchEnv) error {
		_, err := env.Extend(tpm.PCRApp, cryptoutil.SHA1([]byte("output")))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	before, err := m.TPM().PCRRead(tpm.PCRDRTM)
	if err != nil {
		t.Fatal(err)
	}
	if before.IsOnes() {
		t.Fatal("setup: PCR17 untouched")
	}

	if err := m.Reboot(); err != nil {
		t.Fatal(err)
	}
	after, err := m.TPM().PCRRead(tpm.PCRDRTM)
	if err != nil {
		t.Fatal(err)
	}
	if !after.IsOnes() {
		t.Fatalf("PCR17 after reboot = %v, want all-ones", after)
	}
	// Static PCRs carry the fresh boot chain (same values — same boot).
	pcr0, err := m.TPM().PCRRead(0)
	if err != nil {
		t.Fatal(err)
	}
	if pcr0.IsZero() {
		t.Fatal("boot chain missing after reboot")
	}
	if !m.OSRunning() {
		t.Fatal("OS not running after reboot")
	}
}

func TestRebootPersistsKeysCountersNV(t *testing.T) {
	m := newTestMachine(t, nil)
	dev := m.TPM()
	ekBefore := dev.EK().N
	aik, aikPub, err := dev.CreateAIK()
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.CounterCreate(3); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.CounterIncrement(3); err != nil {
		t.Fatal(err)
	}
	if err := dev.NVDefine(1, 8); err != nil {
		t.Fatal(err)
	}
	if err := dev.NVWrite(1, 0, []byte("persist!")); err != nil {
		t.Fatal(err)
	}

	if err := m.Reboot(); err != nil {
		t.Fatal(err)
	}
	if dev.EK().N.Cmp(ekBefore) != 0 {
		t.Fatal("EK changed across reboot")
	}
	v, err := dev.CounterRead(3)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("counter after reboot = %d", v)
	}
	data, err := dev.NVRead(1, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "persist!" {
		t.Fatalf("NV after reboot = %q", data)
	}
	// The AIK still signs.
	nonce := make([]byte, 20)
	q, err := dev.Quote(0, aik, nonce, []int{tpm.PCRDRTM})
	if err != nil {
		t.Fatal(err)
	}
	if err := tpm.VerifyQuote(aikPub, q); err != nil {
		t.Fatalf("AIK broken after reboot: %v", err)
	}
}

func TestSealedPALStateSurvivesReboot(t *testing.T) {
	// State sealed to a PAL's launch identity is release-policy-bound,
	// not boot-bound: after a reboot, a fresh launch of the same PAL
	// reaches the same PCR-17 state and unseals it.
	m := newTestMachine(t, nil)
	image := []byte("stateful-pal")
	var blob *tpm.SealedBlob
	if _, err := m.LateLaunch(image, func(env *LaunchEnv) error {
		b, err := env.SealCurrent([]int{tpm.PCRDRTM}, tpm.MaskOf(2), []byte("carried over"))
		if err != nil {
			return err
		}
		blob = b
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.Reboot(); err != nil {
		t.Fatal(err)
	}
	report, err := m.LateLaunch(image, func(env *LaunchEnv) error {
		got, err := env.Unseal(blob)
		if err != nil {
			return err
		}
		if string(got) != "carried over" {
			t.Fatalf("unsealed %q", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.PALErr != nil {
		t.Fatalf("post-reboot unseal failed: %v", report.PALErr)
	}
}

func TestRebootDuringLaunchRefused(t *testing.T) {
	m := newTestMachine(t, nil)
	_, err := m.LateLaunch([]byte("pal"), func(*LaunchEnv) error {
		if err := m.Reboot(); !errors.Is(err, ErrLaunchActive) {
			t.Fatalf("mid-session reboot: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRebootChargesTime(t *testing.T) {
	m := newTestMachine(t, nil)
	clock := m.Clock()
	before := clock.Now()
	if err := m.Reboot(); err != nil {
		t.Fatal(err)
	}
	if !clock.Now().After(before) {
		t.Fatal("reboot cost no time")
	}
}
