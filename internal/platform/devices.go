package platform

import (
	"errors"
	"sync"
	"time"

	"unitp/internal/sim"
)

// DeviceOwner identifies which software layer currently owns an input or
// output device.
type DeviceOwner int

// Device owners.
const (
	// OwnerOS is the commodity operating system (and hence any malware
	// running on it).
	OwnerOS DeviceOwner = iota + 1

	// OwnerPAL is the late-launched piece of application logic; while it
	// owns a device, OS-level code can neither observe nor drive it.
	OwnerPAL
)

// String names the owner for logs and experiment tables.
func (o DeviceOwner) String() string {
	switch o {
	case OwnerOS:
		return "OS"
	case OwnerPAL:
		return "PAL"
	default:
		return "unknown"
	}
}

// KeyEvent is a single keystroke delivered by the (simulated) human.
type KeyEvent struct {
	// Rune is the character of the key.
	Rune rune

	// At is the instant the key was pressed.
	At time.Time

	// Injected marks events fabricated by software rather than by the
	// physical keyboard. The hardware model sets this for events queued
	// through the OS injection path; a PAL that owns the keyboard
	// exclusively never sees injected events, because injection rides
	// on OS device access.
	Injected bool
}

// ErrDeviceNotOwned is returned when a layer accesses a device it does not
// currently own.
var ErrDeviceNotOwned = errors.New("platform: device owned by another layer")

// ErrNoInput is returned when a keyboard read finds no pending event.
var ErrNoInput = errors.New("platform: no pending input")

// KeyObserver receives keystrokes that are visible to the OS layer —
// exactly the hook a keylogger uses.
type KeyObserver func(KeyEvent)

// Keyboard models a PS/2 keyboard whose controller can be owned either by
// the OS driver stack or polled directly by a late-launched PAL. Ownership
// decides both who may read and who gets to observe.
type Keyboard struct {
	mu        sync.Mutex
	owner     DeviceOwner
	queue     []KeyEvent
	observers []KeyObserver
	clock     sim.Clock
}

// NewKeyboard returns a keyboard owned by the OS.
func NewKeyboard(clock sim.Clock) *Keyboard {
	return &Keyboard{owner: OwnerOS, clock: clock}
}

// Owner returns the current device owner.
func (k *Keyboard) Owner() DeviceOwner {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.owner
}

// setOwner transfers the device and clears pending events so data queued
// for one layer never leaks into the other (mirrors the controller flush
// Flicker performs around a session).
func (k *Keyboard) setOwner(o DeviceOwner) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.owner = o
	k.queue = nil
}

// Press delivers a physical keystroke from the human. Whoever owns the
// device will read it; OS observers see it only while the OS owns the
// device.
func (k *Keyboard) Press(r rune) {
	k.mu.Lock()
	ev := KeyEvent{Rune: r, At: k.clock.Now()}
	k.queue = append(k.queue, ev)
	var observers []KeyObserver
	if k.owner == OwnerOS {
		observers = append(observers, k.observers...)
	}
	k.mu.Unlock()
	for _, obs := range observers {
		obs(ev)
	}
}

// InjectAsOS fabricates a keystroke through the OS driver stack, the move
// a transaction generator makes to "type" a confirmation. It only reaches
// the queue while the OS owns the device: a PAL polling the controller
// directly is unreachable from this path.
func (k *Keyboard) InjectAsOS(r rune) error {
	k.mu.Lock()
	if k.owner != OwnerOS {
		k.mu.Unlock()
		return ErrDeviceNotOwned
	}
	ev := KeyEvent{Rune: r, At: k.clock.Now(), Injected: true}
	k.queue = append(k.queue, ev)
	observers := append([]KeyObserver{}, k.observers...)
	k.mu.Unlock()
	for _, obs := range observers {
		obs(ev)
	}
	return nil
}

// Observe registers an OS-level observer (keylogger hook). Observers only
// fire while the OS owns the device.
func (k *Keyboard) Observe(obs KeyObserver) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.observers = append(k.observers, obs)
}

// Read pops the oldest pending event, failing if caller is not the owner
// or no event is pending.
func (k *Keyboard) Read(as DeviceOwner) (KeyEvent, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.owner != as {
		return KeyEvent{}, ErrDeviceNotOwned
	}
	if len(k.queue) == 0 {
		return KeyEvent{}, ErrNoInput
	}
	ev := k.queue[0]
	k.queue = k.queue[1:]
	return ev, nil
}

// Pending reports the number of queued events visible to the owner.
func (k *Keyboard) Pending() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.queue)
}

// DisplayLine is one line of text on the screen, tagged with the layer
// that drew it. The tag exists for experiments only: the *human* cannot
// see it — which is precisely the paper's "uni-directional" caveat (no
// trusted output channel).
type DisplayLine struct {
	// Text is the rendered content.
	Text string

	// By is the layer that drew the line.
	By DeviceOwner

	// At is when it was drawn.
	At time.Time
}

// Display models a text-mode screen. Both layers can draw while they own
// it; the human reads whatever is there, unable to authenticate origin.
type Display struct {
	mu    sync.Mutex
	owner DeviceOwner
	lines []DisplayLine
	clock sim.Clock
}

// NewDisplay returns a display owned by the OS.
func NewDisplay(clock sim.Clock) *Display {
	return &Display{owner: OwnerOS, clock: clock}
}

// Owner returns the current owner.
func (d *Display) Owner() DeviceOwner {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.owner
}

func (d *Display) setOwner(o DeviceOwner) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.owner = o
}

// Write draws a line as the given layer, failing if it does not own the
// device.
func (d *Display) Write(as DeviceOwner, text string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.owner != as {
		return ErrDeviceNotOwned
	}
	d.lines = append(d.lines, DisplayLine{Text: text, By: as, At: d.clock.Now()})
	return nil
}

// Lines returns a copy of everything drawn so far (what the human sees,
// in order).
func (d *Display) Lines() []DisplayLine {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]DisplayLine, len(d.lines))
	copy(out, d.lines)
	return out
}

// Clear erases the screen as the given layer.
func (d *Display) Clear(as DeviceOwner) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.owner != as {
		return ErrDeviceNotOwned
	}
	d.lines = nil
	return nil
}
