package workload

import (
	"crypto/rsa"
	"fmt"
	"io"

	"unitp/internal/attest"
	"unitp/internal/core"
	"unitp/internal/cryptoutil"
	"unitp/internal/platform"
	"unitp/internal/tpm"
)

// SyntheticClient mints protocol-valid confirmation evidence from key
// material alone — no simulated machine, host OS, or PAL run behind it.
// Load generators and benchmarks use it to saturate a provider with
// genuine crypto (real AIK certificate, real quote signature over the
// real binding) at the cost of one RSA signature per proof, which is
// what a provider-side throughput measurement needs: the provider does
// full verification work while the client side stays cheap enough to
// drive load.
type SyntheticClient struct {
	// PlatformID is the certified pseudonym.
	PlatformID string

	aik   *rsa.PrivateKey
	cert  *attest.AIKCert
	pcr17 cryptoutil.Digest // capped launch state of the approved PAL
}

// NewSyntheticClient enrolls a fresh platform with the CA and prepares
// evidence material attesting a launch of the PAL with the given
// measurement. The provider under test must approve that measurement
// (Verifier().ApprovePAL). Key size is a parameter so benchmarks can
// trade client-side signing cost against realism; pass
// cryptoutil.DefaultRSABits for production-sized keys.
func NewSyntheticClient(ca *attest.PrivacyCA, platformID string, palMeasurement cryptoutil.Digest, random io.Reader, bits int) (*SyntheticClient, error) {
	ek, err := cryptoutil.GenerateRSAKey(random, bits)
	if err != nil {
		return nil, fmt.Errorf("workload: synthetic EK: %w", err)
	}
	aik, err := cryptoutil.GenerateRSAKey(random, bits)
	if err != nil {
		return nil, fmt.Errorf("workload: synthetic AIK: %w", err)
	}
	if err := ca.EnrollEK(platformID, &ek.PublicKey); err != nil {
		return nil, err
	}
	cert, err := ca.CertifyAIK(platformID, &ek.PublicKey, &aik.PublicKey)
	if err != nil {
		return nil, err
	}
	return &SyntheticClient{
		PlatformID: platformID,
		aik:        aik,
		cert:       cert,
		pcr17:      platform.ExpectedPCR17Capped(palMeasurement),
	}, nil
}

// quoteOver signs a quote binding the nonce and the given application
// PCR value, and returns the marshalled evidence.
func (c *SyntheticClient) quoteOver(nonce attest.Nonce, pcr23 cryptoutil.Digest) ([]byte, error) {
	q, err := tpm.SignQuote(nil, c.aik, [20]byte(nonce),
		[]int{tpm.PCRDRTM, tpm.PCRApp},
		[]cryptoutil.Digest{c.pcr17, pcr23})
	if err != nil {
		return nil, err
	}
	ev := attest.Evidence{Cert: c.cert, Quote: q}
	return ev.Marshal(), nil
}

// ConfirmEvidence mints evidence for a ModeQuote transaction
// confirmation: a quote whose PCR 23 carries the confirmation binding
// of (nonce, transaction digest, decision).
func (c *SyntheticClient) ConfirmEvidence(nonce attest.Nonce, txDigest cryptoutil.Digest, confirmed bool) ([]byte, error) {
	return c.quoteOver(nonce, core.ExpectedAppPCR(core.ConfirmationBinding(nonce, txDigest, confirmed)))
}

// PresenceEvidence mints evidence for a human-presence proof.
func (c *SyntheticClient) PresenceEvidence(nonce attest.Nonce) ([]byte, error) {
	return c.quoteOver(nonce, core.ExpectedAppPCR(core.PresenceBinding(nonce)))
}
