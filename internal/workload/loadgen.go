package workload

import (
	"fmt"
	"io"
	"sync/atomic"

	"unitp/internal/attest"
	"unitp/internal/core"
	"unitp/internal/cryptoutil"
	"unitp/internal/platform"
	"unitp/internal/tpm"
)

// SyntheticClient mints protocol-valid confirmation evidence from key
// material alone — no simulated machine, host OS, or PAL run behind it.
// Load generators and benchmarks use it to saturate a provider with
// genuine crypto (real AIK certificate, real quote signature over the
// real binding) at the cost of one signature per proof, which is what a
// provider-side throughput measurement needs: the provider does full
// verification work while the client side stays cheap enough to drive
// load. The quote-signature algorithm is the client's crypto profile
// (cryptoutil.Scheme); the provider under test must run the same one.
type SyntheticClient struct {
	// PlatformID is the certified pseudonym.
	PlatformID string

	signer cryptoutil.Signer
	cert   *attest.AIKCert
	pcr17  cryptoutil.Digest // capped launch state of the approved PAL
	random io.Reader
}

// NewSyntheticClient enrolls a fresh platform with the CA under the
// paper-faithful RSA profile. Key size is a parameter so benchmarks can
// trade client-side signing cost against realism; pass
// cryptoutil.DefaultRSABits for production-sized keys.
func NewSyntheticClient(ca *attest.PrivacyCA, platformID string, palMeasurement cryptoutil.Digest, random io.Reader, bits int) (*SyntheticClient, error) {
	return NewSyntheticClientScheme(ca, platformID, palMeasurement, random, bits, nil)
}

// NewSyntheticClientScheme enrolls a fresh platform with the CA and
// prepares evidence material attesting a launch of the PAL with the
// given measurement, signing quotes under the given crypto profile (nil
// = RSA at the given key size). The provider under test must approve
// that measurement (Verifier().ApprovePAL) and verify the same profile.
// The endorsement key stays RSA regardless of profile — it models TPM
// hardware identity.
func NewSyntheticClientScheme(ca *attest.PrivacyCA, platformID string, palMeasurement cryptoutil.Digest, random io.Reader, bits int, scheme cryptoutil.Scheme) (*SyntheticClient, error) {
	ek, err := cryptoutil.GenerateRSAKey(random, bits)
	if err != nil {
		return nil, fmt.Errorf("workload: synthetic EK: %w", err)
	}
	var signer cryptoutil.Signer
	if scheme == nil || scheme.ID() == cryptoutil.SchemeRSA {
		aik, err := cryptoutil.GenerateRSAKey(random, bits)
		if err != nil {
			return nil, fmt.Errorf("workload: synthetic AIK: %w", err)
		}
		signer = cryptoutil.NewRSASigner(aik)
	} else {
		signer, err = scheme.GenerateKey(random)
		if err != nil {
			return nil, fmt.Errorf("workload: synthetic AIK: %w", err)
		}
	}
	if err := ca.EnrollEK(platformID, &ek.PublicKey); err != nil {
		return nil, err
	}
	cert, err := ca.CertifyAIKScheme(platformID, &ek.PublicKey, signer.Scheme(), signer.Public())
	if err != nil {
		return nil, err
	}
	return &SyntheticClient{
		PlatformID: platformID,
		signer:     signer,
		cert:       cert,
		pcr17:      platform.ExpectedPCR17Capped(palMeasurement),
		random:     random,
	}, nil
}

// Scheme reports the client's quote-signature profile.
func (c *SyntheticClient) Scheme() cryptoutil.SchemeID { return c.signer.Scheme() }

// quoteOver signs a quote binding the nonce and the given application
// PCR value against the given launch state, and returns the marshalled
// evidence.
func (c *SyntheticClient) quoteOver(pcr17 cryptoutil.Digest, nonce attest.Nonce, pcr23 cryptoutil.Digest) ([]byte, error) {
	q, err := tpm.SignQuoteScheme(nil, c.signer, [20]byte(nonce),
		[]int{tpm.PCRDRTM, tpm.PCRApp},
		[]cryptoutil.Digest{pcr17, pcr23})
	if err != nil {
		return nil, err
	}
	ev := attest.Evidence{Cert: c.cert, Quote: q}
	return ev.Marshal(), nil
}

// ConfirmEvidence mints evidence for a ModeQuote transaction
// confirmation: a quote whose PCR 23 carries the confirmation binding
// of (nonce, transaction digest, decision).
func (c *SyntheticClient) ConfirmEvidence(nonce attest.Nonce, txDigest cryptoutil.Digest, confirmed bool) ([]byte, error) {
	return c.quoteOver(c.pcr17, nonce, core.ExpectedAppPCR(core.ConfirmationBinding(nonce, txDigest, confirmed)))
}

// PresenceEvidence mints evidence for a human-presence proof.
func (c *SyntheticClient) PresenceEvidence(nonce attest.Nonce) ([]byte, error) {
	return c.quoteOver(c.pcr17, nonce, core.ExpectedAppPCR(core.PresenceBinding(nonce)))
}

// SessionMaterial is one synthetic attested session: the HMAC key both
// sides share after a successful open, plus the identifiers every
// session-mode confirmation names. Counter hand-out is atomic so
// concurrent workers can draw from one session.
type SessionMaterial struct {
	// ID is the client-chosen session identifier.
	ID uint64

	// Account is the account the session is bound to.
	Account string

	// Key is the session HMAC key.
	Key []byte

	// EncKey is the client's X25519 public share sent in SessionProve.
	EncKey []byte

	counter atomic.Uint64
}

// OpenSessionEvidence mints everything a SessionProve needs: a fresh
// X25519 exchange against the provider's key-agreement key, and a quote
// over the session binding — the synthetic equivalent of a session-open
// PAL run. The provider under test must approve
// core.SessionOpenPALNameFor(providerPubDER) at the measurement of
// core.SessionOpenPALImage(providerPubDER).
func (c *SyntheticClient) OpenSessionEvidence(nonce attest.Nonce, account string, sessionID uint64, providerPubDER, kexPub []byte) (*SessionMaterial, []byte, error) {
	key, clientPub, err := core.SessionKeyExchange(c.random, kexPub, nonce)
	if err != nil {
		return nil, nil, fmt.Errorf("workload: session key exchange: %w", err)
	}
	openPCR17 := platform.ExpectedPCR17Capped(
		cryptoutil.SHA1(core.SessionOpenPALImage(providerPubDER)))
	binding := core.SessionBinding(nonce, account, sessionID, cryptoutil.SHA1(clientPub))
	evidence, err := c.quoteOver(openPCR17, nonce, core.ExpectedAppPCR(binding))
	if err != nil {
		return nil, nil, err
	}
	return &SessionMaterial{
		ID: sessionID, Account: account, Key: key, EncKey: clientPub,
	}, evidence, nil
}

// ConfirmMAC draws the next counter value and MACs a session-mode
// confirmation over it — the synthetic equivalent of a session-confirm
// PAL run.
func (s *SessionMaterial) ConfirmMAC(nonce attest.Nonce, txDigest cryptoutil.Digest, confirmed bool) (counter uint64, mac []byte) {
	counter = s.counter.Add(1)
	mac = cryptoutil.HMACSHA256(s.Key,
		core.SessionMACMessage(nonce, txDigest, confirmed, s.ID, counter))
	return counter, mac
}
