package workload

import (
	"testing"
	"time"

	"unitp/internal/core"
	"unitp/internal/netsim"
	"unitp/internal/platform"
	"unitp/internal/sim"
	"unitp/internal/tpm"
)

func TestDeploymentHappyPath(t *testing.T) {
	d, err := NewDeployment(DeploymentConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	user := DefaultUser(d.Rng.Fork("user"))
	tx := &core.Transaction{ID: "t1", From: "alice", To: "bob",
		AmountCents: 12_300, Currency: "EUR"}
	user.Intend(tx)
	user.AttachTo(d.Machine)
	outcome, err := d.Client.SubmitTransaction(tx)
	if err != nil {
		t.Fatal(err)
	}
	if !outcome.Accepted {
		t.Fatalf("outcome = %+v", outcome)
	}
	approvals, denials := user.Stats()
	if approvals != 1 || denials != 0 {
		t.Fatalf("user stats = %d/%d", approvals, denials)
	}
	if bal, _ := d.Provider.Ledger().Balance("bob"); bal != 12_300 {
		t.Fatalf("bob = %d", bal)
	}
	// Human + TPM + network time all accrued on the virtual clock.
	if d.Clock.Elapsed() <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestDeploymentCustomAccounts(t *testing.T) {
	d, err := NewDeployment(DeploymentConfig{
		Seed:     2,
		Accounts: map[string]int64{"x": 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if bal, err := d.Provider.Ledger().Balance("x"); err != nil || bal != 100 {
		t.Fatalf("x = %d, %v", bal, err)
	}
	if _, err := d.Provider.Ledger().Balance("alice"); err == nil {
		t.Fatal("default accounts created despite custom set")
	}
}

func TestDeploymentWithVendorTPMChargesLatency(t *testing.T) {
	d, err := NewDeployment(DeploymentConfig{
		Seed:       3,
		TPMProfile: tpm.ProfileBroadcom(),
		Link:       netsim.LinkLoopback(),
	})
	if err != nil {
		t.Fatal(err)
	}
	user := DefaultUser(d.Rng.Fork("user"))
	tx := &core.Transaction{ID: "t1", From: "alice", To: "bob",
		AmountCents: 10_000, Currency: "EUR"}
	user.Intend(tx)
	user.AttachTo(d.Machine)
	before := d.Clock.Elapsed()
	if _, err := d.Client.SubmitTransaction(tx); err != nil {
		t.Fatal(err)
	}
	elapsed := d.Clock.Elapsed() - before
	// Broadcom quote alone is 972 ms; the whole flow must exceed it.
	if elapsed < 972*time.Millisecond {
		t.Fatalf("end-to-end %v, too fast for a Broadcom TPM", elapsed)
	}
}

func TestUserDeniesMismatchedPrompt(t *testing.T) {
	d, err := NewDeployment(DeploymentConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	user := DefaultUser(d.Rng.Fork("user"))
	intended := &core.Transaction{ID: "t1", From: "alice", To: "bob",
		AmountCents: 10_000, Currency: "EUR"}
	user.Intend(intended)
	user.AttachTo(d.Machine)
	// What actually gets submitted differs from the intent (as if a
	// compromised UI rewrote it before submission).
	actual := *intended
	actual.To = "mallory"
	outcome, err := d.Client.SubmitTransaction(&actual)
	if err != nil {
		t.Fatal(err)
	}
	if outcome.Accepted {
		t.Fatal("user approved a mismatched prompt")
	}
	if _, denials := user.Stats(); denials != 1 {
		t.Fatal("denial not recorded")
	}
}

func TestUserWithoutIntentDenies(t *testing.T) {
	d, err := NewDeployment(DeploymentConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	user := DefaultUser(d.Rng.Fork("user"))
	user.AttachTo(d.Machine) // no Intend call
	tx := &core.Transaction{ID: "t1", From: "alice", To: "bob",
		AmountCents: 10_000, Currency: "EUR"}
	outcome, err := d.Client.SubmitTransaction(tx)
	if err != nil {
		t.Fatal(err)
	}
	if outcome.Accepted {
		t.Fatal("user approved with no intent")
	}
}

func TestCarelessUserApprovesAnything(t *testing.T) {
	d, err := NewDeployment(DeploymentConfig{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	user := CarelessUser(d.Rng.Fork("user"), 1.0)
	user.AttachTo(d.Machine) // no intent, fully careless
	tx := &core.Transaction{ID: "t1", From: "alice", To: "mallory",
		AmountCents: 10_000, Currency: "EUR"}
	outcome, err := d.Client.SubmitTransaction(tx)
	if err != nil {
		t.Fatal(err)
	}
	if !outcome.Accepted {
		t.Fatalf("careless user failed to approve: %+v", outcome)
	}
}

func TestUserAnswersPresencePrompt(t *testing.T) {
	d, err := NewDeployment(DeploymentConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	user := DefaultUser(d.Rng.Fork("user"))
	user.AttachTo(d.Machine)
	outcome, err := d.Client.ProveHumanPresence()
	if err != nil {
		t.Fatal(err)
	}
	if !outcome.Accepted || outcome.Token == "" {
		t.Fatalf("presence outcome = %+v", outcome)
	}
}

func TestTxStreamDeterministicAndValid(t *testing.T) {
	a := NewTxStream(sim.NewRand(8), TxStreamConfig{From: "alice"})
	b := NewTxStream(sim.NewRand(8), TxStreamConfig{From: "alice"})
	for i := 0; i < 50; i++ {
		txA, gapA := a.Next()
		txB, gapB := b.Next()
		if !txA.Equal(txB) || gapA != gapB {
			t.Fatalf("streams diverged at %d", i)
		}
		if err := txA.Validate(); err != nil {
			t.Fatalf("generated invalid tx: %v", err)
		}
		if txA.AmountCents < 500 || txA.AmountCents > 50_000 {
			t.Fatalf("amount %d out of range", txA.AmountCents)
		}
	}
	if a.Count() != 50 {
		t.Fatalf("count = %d", a.Count())
	}
}

func TestTxStreamUniqueIDs(t *testing.T) {
	s := NewTxStream(sim.NewRand(9), TxStreamConfig{From: "alice"})
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		tx, _ := s.Next()
		if seen[tx.ID] {
			t.Fatalf("duplicate ID %s", tx.ID)
		}
		seen[tx.ID] = true
	}
}

func TestProtectionLabels(t *testing.T) {
	if got := protectionLabel(nil); got != "full" {
		t.Fatalf("nil label = %q", got)
	}
	full := platform.AllProtections()
	if got := protectionLabel(&full); got != "full" {
		t.Fatalf("full label = %q", got)
	}
	cases := []struct {
		mut  func(*platform.Protections)
		want string
	}{
		{func(p *platform.Protections) { p.MeasuredLaunch = false }, "no measured launch"},
		{func(p *platform.Protections) { p.ExclusiveInput = false }, "no exclusive input"},
		{func(p *platform.Protections) { p.DMAProtection = false }, "no DMA protection"},
		{func(p *platform.Protections) { p.LocalityGating = false }, "no locality gating"},
		{func(p *platform.Protections) { p.ExclusiveDisplay = false }, "no exclusive display"},
	}
	for _, tc := range cases {
		p := platform.AllProtections()
		tc.mut(&p)
		if got := protectionLabel(&p); got != tc.want {
			t.Fatalf("label = %q, want %q", got, tc.want)
		}
	}
}
