// Package workload provides the experiment substrate above the protocol:
// complete client+provider deployments, human user models, transaction
// stream generators, and the attack strategies of the security
// evaluation (experiment F3).
package workload

import (
	"errors"
	"fmt"
	"time"

	"unitp/internal/attest"
	"unitp/internal/core"
	"unitp/internal/cryptoutil"
	"unitp/internal/faults"
	"unitp/internal/flicker"
	"unitp/internal/hostos"
	"unitp/internal/netsim"
	"unitp/internal/obs"
	"unitp/internal/platform"
	"unitp/internal/sim"
	"unitp/internal/store"
	"unitp/internal/tpm"
)

// DeploymentConfig parameterizes a full deployment.
type DeploymentConfig struct {
	// Seed drives all randomness in the deployment deterministically.
	Seed uint64

	// TPMProfile selects the client TPM vendor (default Ideal).
	TPMProfile tpm.Profile

	// Link selects the client↔provider network path (default
	// broadband).
	Link netsim.Link

	// Protections selects the client platform's security properties
	// (nil = all on).
	Protections *platform.Protections

	// ConfirmThresholdCents configures the provider's confirmation
	// policy (0 = confirm everything).
	ConfirmThresholdCents int64

	// NonceTTL bounds challenge freshness (default 5 min).
	NonceTTL time.Duration

	// Accounts seeds the provider ledger; nil gets a default
	// alice/bob/mallory set.
	Accounts map[string]int64

	// Credentials seeds username/PIN pairs for the login flow; nil
	// enrolls alice with DefaultPIN.
	Credentials map[string]string

	// SINITImage switches the client platform to Intel TXT semantics
	// (SINIT measured before the PAL); the provider's approvals follow
	// automatically.
	SINITImage []byte

	// Faults plugs a fault injector (e.g. *faults.Plan) into the
	// network pipe. nil means a clean link beyond the Link's own loss
	// model.
	Faults netsim.Injector

	// Retry replaces the pipe's legacy fixed-timeout loop with a full
	// backoff policy. nil keeps legacy transport behavior.
	Retry *netsim.RetryPolicy

	// Recovery tunes the client's session retries and CAPTCHA
	// degradation (zero value = defaults).
	Recovery core.RecoveryConfig

	// Backend attaches a crash-safe durability store (WAL + snapshots)
	// to the provider; RestartProvider can then rebuild the provider
	// from it after a crash. nil keeps the provider memory-only.
	Backend store.Backend

	// SnapshotEvery rotates the provider's snapshot after this many WAL
	// group commits (0 = only at attach and explicit SnapshotNow).
	// Ignored without Backend.
	SnapshotEvery int

	// SessionMaxTx / SessionMaxAge tune the provider's attested-session
	// re-quote policy (zero values = provider defaults).
	SessionMaxTx  uint32
	SessionMaxAge time.Duration

	// Metrics attaches a live metrics registry to every subsystem
	// (client transport, network pipe, provider, store, fault plan if it
	// supports it). nil runs unmetered; instrumented code paths cost
	// nothing beyond a nil check.
	Metrics *obs.Registry

	// Tracer records span-level session traces across client, network,
	// and provider. The deployment seeds its ID base from a dedicated
	// random fork, so traces are deterministic per Seed. nil disables
	// tracing.
	Tracer *obs.Tracer
}

// DefaultPIN is the PIN enrolled for alice in default deployments.
const DefaultPIN = "2468"

// Deployment is one complete simulated system: a client machine with OS
// and PAL manager, the privacy CA, the service provider, and the network
// between them — everything an experiment or example needs.
type Deployment struct {
	// Clock is the shared virtual clock.
	Clock *sim.VirtualClock

	// Rng is the deployment's deterministic randomness root.
	Rng *sim.Rand

	// Machine is the client platform.
	Machine *platform.Machine

	// OS is the client's (infectable) operating system.
	OS *hostos.OS

	// Manager runs PAL sessions on the client.
	Manager *flicker.Manager

	// CA is the privacy CA both sides trust.
	CA *attest.PrivacyCA

	// Provider is the service provider engine.
	Provider *core.Provider

	// Client is the client protocol engine.
	Client *core.Client

	// Pipe is the simulated network path (exposed for loss/latency
	// statistics).
	Pipe *netsim.Pipe

	// AIK is the client's attestation key handle.
	AIK tpm.Handle

	// Cert is the client's AIK certificate.
	Cert *attest.AIKCert

	backend     store.Backend
	providerCfg core.ProviderConfig
	restarts    int
}

// NewDeployment wires a full deployment: boots the machine, enrolls the
// TPM with the CA, certifies an AIK, builds a provider that approves the
// protocol PALs, seeds the ledger, and connects client to provider over
// the simulated link.
func NewDeployment(cfg DeploymentConfig) (*Deployment, error) {
	clock := sim.NewVirtualClock()
	rng := sim.NewRand(cfg.Seed ^ 0xDEB10)
	if cfg.Link.Name == "" {
		cfg.Link = netsim.LinkBroadband()
	}
	if cfg.Tracer != nil {
		// A dedicated fork keeps session IDs deterministic per seed
		// without perturbing any other subsystem's random stream.
		cfg.Tracer.SetIDBase(rng.Fork("trace").Uint64())
	}
	if plan, ok := cfg.Faults.(*faults.Plan); ok && cfg.Metrics != nil {
		plan.SetMetrics(cfg.Metrics)
	}

	machine, err := platform.New(platform.Config{
		Clock:       clock,
		Random:      rng.Fork("machine"),
		TPMProfile:  cfg.TPMProfile,
		Protections: cfg.Protections,
		SINITImage:  cfg.SINITImage,
	})
	if err != nil {
		return nil, fmt.Errorf("workload: machine: %w", err)
	}
	osys := hostos.New(machine)
	manager := flicker.NewManager(machine)

	caKey, err := tpm.PooledKeySource().Next()
	if err != nil {
		return nil, fmt.Errorf("workload: CA key: %w", err)
	}
	ca := attest.NewPrivacyCA("unitp-privacy-ca", caKey, clock, rng.Fork("ca"))
	if err := ca.EnrollEK("client-platform", machine.TPM().EK()); err != nil {
		return nil, fmt.Errorf("workload: enroll: %w", err)
	}
	aik, aikPub, err := machine.TPM().CreateAIK()
	if err != nil {
		return nil, fmt.Errorf("workload: AIK: %w", err)
	}
	cert, err := ca.CertifyAIK("client-platform", machine.TPM().EK(), aikPub)
	if err != nil {
		return nil, fmt.Errorf("workload: certify: %w", err)
	}

	provKey, err := tpm.PooledKeySource().Next()
	if err != nil {
		return nil, fmt.Errorf("workload: provider key: %w", err)
	}
	providerCfg := core.ProviderConfig{
		Name:                  "sim-bank",
		CAPub:                 ca.PublicKey(),
		Key:                   provKey,
		Clock:                 clock,
		Random:                rng.Fork("provider"),
		NonceTTL:              cfg.NonceTTL,
		ConfirmThresholdCents: cfg.ConfirmThresholdCents,
		SnapshotEvery:         cfg.SnapshotEvery,
		SessionMaxTx:          cfg.SessionMaxTx,
		SessionMaxAge:         cfg.SessionMaxAge,
		Metrics:               cfg.Metrics,
		Tracer:                cfg.Tracer,
	}
	provider := core.NewProvider(providerCfg)
	// Approvals follow the client platform's DRTM flavour: plain image
	// measurement on SKINIT, (SINIT, image) chain on TXT.
	approve := func(name string, image []byte) {
		provider.Verifier().ApprovePALChain(name,
			machine.LaunchChain(cryptoutil.SHA1(image))...)
	}
	approve(core.ConfirmPALName, core.ConfirmPALImage())
	approve(core.PresencePALName, core.PresencePALImage())
	approve(core.ProvisionPALName, core.ProvisionPALImage(provider.PublicKeyDER()))
	approve(core.PINPALName, core.PINPALImage())
	approve(core.BatchPALName, core.BatchPALImage())
	approve(core.SessionConfirmPALName, core.SessionConfirmPALImage())
	approve(core.SessionOpenPALNameFor(provider.PublicKeyDER()),
		core.SessionOpenPALImage(provider.PublicKeyDER()))

	accounts := cfg.Accounts
	if accounts == nil {
		accounts = map[string]int64{"alice": 1_000_000, "bob": 0, "mallory": 0}
	}
	for name, cents := range accounts {
		if err := provider.Ledger().CreateAccount(name, cents); err != nil {
			return nil, fmt.Errorf("workload: account %s: %w", name, err)
		}
	}
	creds := cfg.Credentials
	if creds == nil {
		creds = map[string]string{"alice": DefaultPIN}
	}
	for user, pin := range creds {
		if err := provider.EnrollCredential(user, pin); err != nil {
			return nil, fmt.Errorf("workload: credential %s: %w", user, err)
		}
	}

	// Setup (accounts, credentials, approvals) happens before the store
	// attaches, so the initial snapshot captures it all.
	if cfg.Backend != nil {
		st, err := store.Open(cfg.Backend)
		if err != nil {
			return nil, fmt.Errorf("workload: open store: %w", err)
		}
		if err := provider.AttachStore(st); err != nil {
			return nil, fmt.Errorf("workload: attach store: %w", err)
		}
	}

	d := &Deployment{
		Clock: clock, Rng: rng, Machine: machine, OS: osys,
		Manager: manager, CA: ca, Provider: provider,
		AIK: aik, Cert: cert,
		backend: cfg.Backend, providerCfg: providerCfg,
	}
	d.Pipe = netsim.NewPipe(netsim.Config{
		Clock:   clock,
		Random:  rng.Fork("net"),
		Link:    cfg.Link,
		Retry:   cfg.Retry,
		Faults:  cfg.Faults,
		Metrics: cfg.Metrics,
		Tracer:  cfg.Tracer,
	}, d.handle)

	recovery := cfg.Recovery
	if recovery.Rng == nil {
		recovery.Rng = rng.Fork("recovery")
	}
	client, err := core.NewClient(core.ClientConfig{
		Manager:   manager,
		OS:        osys,
		Transport: d.Pipe,
		AIK:       aik,
		Cert:      cert,
		Recovery:  recovery,
		Tracer:    cfg.Tracer,
	})
	if err != nil {
		return nil, fmt.Errorf("workload: client: %w", err)
	}
	d.Client = client
	return d, nil
}

// handle is the pipe's server side, indirected through the deployment
// so RestartProvider can swap the provider under live traffic. A dead
// provider (store crash) surfaces as a connection reset — transient
// from the client's point of view — rather than a fatal remote error.
func (d *Deployment) handle(req []byte) ([]byte, error) {
	resp, err := d.Provider.Handle(req)
	if err != nil && errors.Is(err, store.ErrCrashed) {
		return nil, netsim.ErrReset
	}
	return resp, err
}

// RestartProvider models the provider process coming back after a
// crash: a replacement engine is rebuilt from the durability store
// (latest snapshot + WAL tail, audit chain re-verified), configuration
// that is not state — keys and PAL approvals — is re-applied exactly as
// at first construction, and the pipe is re-pointed at the new process.
// When modelling a hard crash, tear the backend first (see
// store.MemBackend.Recover and faults.RecoveryPolicy).
func (d *Deployment) RestartProvider() error {
	if d.backend == nil {
		return fmt.Errorf("workload: deployment has no durability backend")
	}
	st, err := store.Open(d.backend)
	if err != nil {
		return fmt.Errorf("workload: reopen store: %w", err)
	}
	d.restarts++
	pcfg := d.providerCfg
	pcfg.Random = d.Rng.Fork(fmt.Sprintf("provider-life-%d", d.restarts))
	p, err := core.RestoreProvider(pcfg, st)
	if err != nil {
		return fmt.Errorf("workload: restore provider: %w", err)
	}
	approve := func(name string, image []byte) {
		p.Verifier().ApprovePALChain(name,
			d.Machine.LaunchChain(cryptoutil.SHA1(image))...)
	}
	approve(core.ConfirmPALName, core.ConfirmPALImage())
	approve(core.PresencePALName, core.PresencePALImage())
	approve(core.ProvisionPALName, core.ProvisionPALImage(p.PublicKeyDER()))
	approve(core.PINPALName, core.PINPALImage())
	approve(core.BatchPALName, core.BatchPALImage())
	approve(core.SessionConfirmPALName, core.SessionConfirmPALImage())
	approve(core.SessionOpenPALNameFor(p.PublicKeyDER()),
		core.SessionOpenPALImage(p.PublicKeyDER()))
	d.Provider = p
	d.Pipe.SetHandler(d.handle)
	return nil
}

// Restarts reports how many times the provider has been restarted.
func (d *Deployment) Restarts() int { return d.restarts }
