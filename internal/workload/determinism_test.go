package workload

import (
	"fmt"
	"testing"
)

// runDeterministicScenario executes a fixed scenario and returns a
// fingerprint of everything observable: outcomes, balances, virtual
// time, provider stats, and the audit chain head.
func runDeterministicScenario(t *testing.T, seed uint64) (string, error) {
	t.Helper()
	d, err := NewDeployment(DeploymentConfig{Seed: seed})
	if err != nil {
		return "", err
	}
	user := DefaultUser(d.Rng.Fork("user"))
	stream := NewTxStream(d.Rng.Fork("txs"), TxStreamConfig{From: "alice", MaxCents: 2_000})
	fingerprint := ""
	for i := 0; i < 4; i++ {
		tx, gap := stream.Next()
		d.Clock.Sleep(gap)
		user.Intend(tx)
		user.AttachTo(d.Machine)
		outcome, err := d.Client.SubmitTransaction(tx)
		if err != nil {
			return "", err
		}
		fingerprint += outcome.Reason + "|"
	}
	bob, err := d.Provider.Ledger().Balance("bob")
	if err != nil {
		return "", err
	}
	st := d.Provider.Stats()
	// Audit entries are fingerprinted by their deterministic content
	// (decision, transaction digest, timestamp) — NOT the chain head,
	// which covers evidence bytes and thus the per-deployment key
	// material the process-global pool intentionally varies.
	for _, e := range d.Provider.AuditLog().Entries() {
		fingerprint += fmt.Sprintf("%s/%v/%v/%v|", e.TxID, e.Confirmed, e.TxDigest, e.At.UnixNano())
	}
	return fmt.Sprintf("%s%v|%d|%d",
		fingerprint, d.Clock.Elapsed(), bob, st.Confirmed), nil
}

// TestEndToEndDeterminism is the substrate's core promise: the same
// seed reproduces the same world, keystroke for keystroke, to the
// nanosecond of virtual time and the last audit-chain byte.
func TestEndToEndDeterminism(t *testing.T) {
	a, err := runDeterministicScenario(t, 777)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runDeterministicScenario(t, 777)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	c, err := runDeterministicScenario(t, 778)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different seeds produced identical worlds (suspicious)")
	}
}
