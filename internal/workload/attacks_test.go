package workload

import (
	"testing"
	"unitp/internal/core"

	"unitp/internal/platform"
)

// TestAttacksAgainstFullProtections is the executable core of the
// paper's security argument: with every platform property intact, the
// two baseline attacks (which model the world *without* the trusted
// path) succeed, and every attack against the trusted path itself fails.
func TestAttacksAgainstFullProtections(t *testing.T) {
	expectSuccess := map[string]bool{
		TxGeneratorBaseline{}.Name(): true,
		UIInjectionBaseline{}.Name(): true,
		// The cuckoo relay defeats platform protections by construction
		// (everything on the attacker's machine is genuine); without
		// the account-platform binding *policy*, it succeeds.
		CuckooRelay{}.Name(): true,
	}
	for i, atk := range AllAttacks() {
		res, err := atk.Execute(DeploymentConfig{Seed: uint64(100 + i)})
		if err != nil {
			t.Fatalf("%s: %v", atk.Name(), err)
		}
		want := expectSuccess[atk.Name()]
		if res.ForgedAccepted != want {
			t.Errorf("%s under full protections: forged accepted = %v, want %v (%s)",
				atk.Name(), res.ForgedAccepted, want, res.Detail)
		}
		if _, isCuckoo := atk.(CuckooRelay); !isCuckoo && res.Protections != "full" {
			t.Errorf("%s: protections label = %q", atk.Name(), res.Protections)
		}
	}
}

// TestCuckooRelayStoppedByBinding shows the policy defence: binding the
// account to its enrolled platform rejects confirmations relayed through
// any other machine, however genuine.
func TestCuckooRelayStoppedByBinding(t *testing.T) {
	res, err := CuckooRelay{Bind: true}.Execute(DeploymentConfig{Seed: 400})
	if err != nil {
		t.Fatal(err)
	}
	if res.ForgedAccepted {
		t.Fatalf("cuckoo relay beat the platform binding: %s", res.Detail)
	}
	// And the legitimate client on the bound platform still works.
	d, err := NewDeployment(DeploymentConfig{Seed: 401})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Provider.BindPlatform("alice", d.Cert.PlatformID); err != nil {
		t.Fatal(err)
	}
	user := DefaultUser(d.Rng.Fork("user"))
	tx := &core.Transaction{ID: "b1", From: "alice", To: "bob",
		AmountCents: 5_000, Currency: "EUR"}
	user.Intend(tx)
	user.AttachTo(d.Machine)
	outcome, err := d.Client.SubmitTransaction(tx)
	if err != nil {
		t.Fatal(err)
	}
	if !outcome.Accepted {
		t.Fatalf("bound platform's own confirmation rejected: %+v", outcome)
	}
	// Binding management rules.
	if err := d.Provider.BindPlatform("alice", "other"); err == nil {
		t.Fatal("rebinding to a different platform accepted")
	}
	if err := d.Provider.BindPlatform("alice", d.Cert.PlatformID); err != nil {
		t.Fatalf("idempotent rebinding rejected: %v", err)
	}
	if err := d.Provider.BindPlatform("", "x"); err == nil {
		t.Fatal("empty account accepted")
	}
}

// TestAblationsReadmitAttacks shows each protection is load-bearing:
// disabling it re-admits exactly the corresponding attack.
func TestAblationsReadmitAttacks(t *testing.T) {
	cases := []struct {
		attack Attack
		ablate func(*platform.Protections)
	}{
		{PALInputInjection{}, func(p *platform.Protections) { p.ExclusiveInput = false }},
		{PALSubstitution{}, func(p *platform.Protections) { p.MeasuredLaunch = false }},
		{LocalityForgery{}, func(p *platform.Protections) { p.LocalityGating = false }},
		{DMAKeyTheft{}, func(p *platform.Protections) { p.DMAProtection = false }},
	}
	for i, tc := range cases {
		prot := platform.AllProtections()
		tc.ablate(&prot)
		res, err := tc.attack.Execute(DeploymentConfig{
			Seed:        uint64(200 + i),
			Protections: &prot,
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.attack.Name(), err)
		}
		if !res.ForgedAccepted {
			t.Errorf("%s with %s: expected the forgery to succeed, got %q",
				tc.attack.Name(), res.Protections, res.Detail)
		}
	}
}

// TestReplayAndRewriteFailEvenUnderAblations shows the protocol-level
// defences (nonce freshness, transaction binding) hold regardless of
// platform ablations — they are cryptographic, not hardware, properties.
func TestReplayAndRewriteFailEvenUnderAblations(t *testing.T) {
	prot := platform.AllProtections()
	prot.DMAProtection = false
	prot.ExclusiveDisplay = false
	for i, atk := range []Attack{ConfirmationReplay{}, ChallengeRewrite{}} {
		res, err := atk.Execute(DeploymentConfig{
			Seed:        uint64(300 + i),
			Protections: &prot,
		})
		if err != nil {
			t.Fatalf("%s: %v", atk.Name(), err)
		}
		if res.ForgedAccepted {
			t.Errorf("%s succeeded despite protocol defences: %s", atk.Name(), res.Detail)
		}
	}
}

func TestAttackSuiteComplete(t *testing.T) {
	attacks := AllAttacks()
	if len(attacks) != 10 {
		t.Fatalf("attack suite has %d strategies, want 10", len(attacks))
	}
	seen := make(map[string]bool)
	for _, a := range attacks {
		if a.Name() == "" {
			t.Fatal("unnamed attack")
		}
		if seen[a.Name()] {
			t.Fatalf("duplicate attack name %q", a.Name())
		}
		seen[a.Name()] = true
	}
}
