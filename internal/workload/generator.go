package workload

import (
	"fmt"
	"time"

	"unitp/internal/core"
	"unitp/internal/sim"
)

// TxStream generates a deterministic stream of plausible payment orders
// for one account — the offered load of the end-to-end experiments.
type TxStream struct {
	rng     *sim.Rand
	from    string
	payees  []string
	minC    int64
	maxC    int64
	next    int
	minGap  time.Duration
	meanGap time.Duration
}

// TxStreamConfig parameterizes a stream.
type TxStreamConfig struct {
	// From is the paying account.
	From string

	// Payees is the set of legitimate recipients (default: bob).
	Payees []string

	// MinCents / MaxCents bound the drawn amounts (defaults 500 /
	// 50_000).
	MinCents, MaxCents int64

	// MeanGap is the mean inter-transaction time (default 2 h — retail
	// e-banking cadence).
	MeanGap time.Duration
}

// NewTxStream builds a stream.
func NewTxStream(rng *sim.Rand, cfg TxStreamConfig) *TxStream {
	if rng == nil {
		rng = sim.NewRand(0x75)
	}
	if len(cfg.Payees) == 0 {
		cfg.Payees = []string{"bob"}
	}
	if cfg.MinCents == 0 {
		cfg.MinCents = 500
	}
	if cfg.MaxCents == 0 {
		cfg.MaxCents = 50_000
	}
	if cfg.MeanGap == 0 {
		cfg.MeanGap = 2 * time.Hour
	}
	return &TxStream{
		rng:     rng,
		from:    cfg.From,
		payees:  append([]string{}, cfg.Payees...),
		minC:    cfg.MinCents,
		maxC:    cfg.MaxCents,
		meanGap: cfg.MeanGap,
	}
}

// Next draws the next transaction and the think-time gap before it.
func (s *TxStream) Next() (*core.Transaction, time.Duration) {
	s.next++
	span := s.maxC - s.minC
	amount := s.minC
	if span > 0 {
		amount += int64(s.rng.Intn(int(span)))
	}
	tx := &core.Transaction{
		ID:          fmt.Sprintf("%s-tx-%06d", s.from, s.next),
		From:        s.from,
		To:          s.payees[s.rng.Intn(len(s.payees))],
		AmountCents: amount,
		Currency:    "EUR",
		Memo:        fmt.Sprintf("order %d", s.next),
	}
	gap := time.Duration(s.rng.Exponential(float64(s.meanGap)))
	if gap < s.minGap {
		gap = s.minGap
	}
	return tx, gap
}

// Count reports how many transactions have been drawn.
func (s *TxStream) Count() int { return s.next }
