package workload

import (
	"strconv"
	"strings"
	"sync"
	"time"

	"unitp/internal/core"
	"unitp/internal/platform"
	"unitp/internal/sim"
)

// User models the human at the client machine: reaction times, how
// carefully they read the trusted prompt, and occasional typos. The
// model decides y/n by comparing what the PAL *displays* with what the
// user *intends* — which is exactly the comparison the paper's security
// argument asks the human to perform.
type User struct {
	// Name labels the user.
	Name string

	// Reaction is the mean time to react to a prompt with a single
	// keypress.
	Reaction time.Duration

	// ReactionJitter is the standard deviation of the reaction time.
	ReactionJitter time.Duration

	// ReadTime is the additional time spent actually reading a
	// transaction summary before deciding.
	ReadTime time.Duration

	// CarelessProb is the probability the user approves without
	// reading (the paper's human-factor caveat).
	CarelessProb float64

	// TypoProb is the probability the user presses the opposite key of
	// what they decided.
	TypoProb float64

	// PIN is what the user types at a secure PIN-entry prompt.
	PIN string

	// Keystroke is the per-character typing time at a PIN prompt.
	Keystroke time.Duration

	mu      sync.Mutex
	intent  *core.Transaction
	intents []core.Transaction
	rng     *sim.Rand

	// decision log for experiments
	approvals int
	denials   int
}

// DefaultUser returns a reasonably attentive user.
func DefaultUser(rng *sim.Rand) *User {
	return &User{
		Name:           "default-user",
		Reaction:       900 * time.Millisecond,
		ReactionJitter: 250 * time.Millisecond,
		ReadTime:       1800 * time.Millisecond,
		CarelessProb:   0.0,
		TypoProb:       0.0,
		PIN:            DefaultPIN,
		Keystroke:      280 * time.Millisecond,
		rng:            rng,
	}
}

// CarelessUser returns a user who blindly confirms a fraction of
// prompts.
func CarelessUser(rng *sim.Rand, carelessProb float64) *User {
	u := DefaultUser(rng)
	u.Name = "careless-user"
	u.CarelessProb = carelessProb
	return u
}

// Intend records the transaction the user believes they are making. The
// next confirmation prompt is judged against it.
func (u *User) Intend(tx *core.Transaction) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.intents = nil
	if tx == nil {
		u.intent = nil
		return
	}
	cp := *tx
	u.intent = &cp
}

// IntendBatch records the set of transactions the user believes they are
// making; a batch prompt entry is approved iff it matches one of them.
func (u *User) IntendBatch(txs []core.Transaction) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.intent = nil
	u.intents = append([]core.Transaction{}, txs...)
}

// Stats returns (approvals, denials) this user has issued.
func (u *User) Stats() (approvals, denials int) {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.approvals, u.denials
}

// MakePump builds the user's input pump for a machine without
// installing it (so experiments can chain pumps, e.g. a DMA thief in
// front of the human).
func (u *User) MakePump(m *platform.Machine) platform.InputPump {
	if u.rng == nil {
		u.rng = sim.NewRand(0x05E2)
	}
	return func() bool {
		u.mu.Lock()
		defer u.mu.Unlock()
		u.respond(m)
		return true
	}
}

// AttachTo installs the user as the machine's input pump: whenever a PAL
// waits for a keystroke, the user reads the display, decides, and
// presses a key — charging human time to the clock.
func (u *User) AttachTo(m *platform.Machine) {
	m.SetInputPump(u.MakePump(m))
}

// respond produces one keypress (or a typed PIN). Must be called with
// u.mu held.
func (u *User) respond(m *platform.Machine) {
	lines := m.Display().Lines()
	var prompt string
	if len(lines) > 0 {
		prompt = lines[len(lines)-1].Text
	}

	// Secure PIN entry: type the PIN, one charged keystroke at a time,
	// then Enter.
	if strings.Contains(prompt, "SECURE PIN ENTRY") {
		m.Clock().Sleep(u.rng.NormalDuration(u.Reaction, u.ReactionJitter))
		for _, r := range u.PIN {
			m.Clock().Sleep(u.Keystroke)
			m.Keyboard().Press(r)
		}
		m.Clock().Sleep(u.Keystroke)
		m.Keyboard().Press('\n')
		return
	}

	// A bare presence prompt: any key after a simple reaction.
	if !strings.Contains(prompt, "TRUSTED CONFIRMATION") {
		m.Clock().Sleep(u.rng.NormalDuration(u.Reaction, u.ReactionJitter))
		m.Keyboard().Press(' ')
		return
	}

	// Confirmation prompt: read (unless careless), compare with
	// intent, decide.
	var decision bool
	if u.rng.Bool(u.CarelessProb) {
		m.Clock().Sleep(u.rng.NormalDuration(u.Reaction, u.ReactionJitter))
		decision = true
	} else {
		m.Clock().Sleep(u.ReadTime + u.rng.NormalDuration(u.Reaction, u.ReactionJitter))
		decision = u.promptMatchesIntent(prompt)
	}
	if u.rng.Bool(u.TypoProb) {
		decision = !decision
	}
	key := 'n'
	if decision {
		key = 'y'
		u.approvals++
	} else {
		u.denials++
	}
	m.Keyboard().Press(key)
}

// promptMatchesIntent checks the displayed summary against the intended
// transaction(s): payee, amount, and currency must all appear for at
// least one intent.
func (u *User) promptMatchesIntent(prompt string) bool {
	candidates := u.intents
	if u.intent != nil {
		candidates = append(candidates, *u.intent)
	}
	for i := range candidates {
		tx := &candidates[i]
		amount := strconv.FormatInt(tx.AmountCents/100, 10)
		if strings.Contains(prompt, " to "+tx.To+" ") &&
			strings.Contains(prompt, amount) &&
			strings.Contains(prompt, tx.Currency) {
			return true
		}
	}
	return false
}
