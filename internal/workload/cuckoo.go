package workload

import (
	"fmt"

	"unitp/internal/attest"
	"unitp/internal/core"
	"unitp/internal/flicker"
	"unitp/internal/platform"
	"unitp/internal/tpm"
)

// CuckooRelay is the relay ("cuckoo") attack: malware on the victim's
// machine forwards the confirmation challenge to a machine the
// *attacker* owns — a perfectly genuine platform, with a genuine TPM,
// running the genuine confirmation PAL, with the attacker's own human
// happily pressing y. The resulting evidence is cryptographically
// valid in every respect; it is just from the wrong computer.
//
// The platform protections cannot stop this (nothing on the attacker's
// machine misbehaves). The defence is provider policy: binding each
// account to its enrolled platform (Provider.BindPlatform), which the
// Bind field toggles.
type CuckooRelay struct {
	// Bind enables the account→platform binding defence.
	Bind bool
}

// Name implements Attack.
func (a CuckooRelay) Name() string { return "cuckoo relay (attacker's own platform)" }

// Execute implements Attack.
func (a CuckooRelay) Execute(cfg DeploymentConfig) (AttackResult, error) {
	d, err := NewDeployment(cfg)
	if err != nil {
		return AttackResult{}, err
	}
	if a.Bind {
		// The victim's account was bound to their platform at setup.
		if err := d.Provider.BindPlatform("alice", d.Cert.PlatformID); err != nil {
			return AttackResult{}, err
		}
	}

	// The attacker's own, fully genuine machine, enrolled with the same
	// privacy CA (the CA certifies *platforms*, not *people*).
	attackerMachine, err := platform.New(platform.Config{
		Clock:  d.Clock,
		Random: d.Rng.Fork("attacker-machine"),
		Keys:   tpm.PooledKeySource(),
	})
	if err != nil {
		return AttackResult{}, err
	}
	if err := d.CA.EnrollEK("attacker-platform", attackerMachine.TPM().EK()); err != nil {
		return AttackResult{}, err
	}
	attackerAIK, attackerAIKPub, err := attackerMachine.TPM().CreateAIK()
	if err != nil {
		return AttackResult{}, err
	}
	attackerCert, err := d.CA.CertifyAIK("attacker-platform",
		attackerMachine.TPM().EK(), attackerAIKPub)
	if err != nil {
		return AttackResult{}, err
	}
	attackerMgr := flicker.NewManager(attackerMachine)
	if err := attackerMgr.Register(core.NewConfirmPAL()); err != nil {
		return AttackResult{}, err
	}
	// The attacker's human is at the attacker's keyboard.
	pressed := false
	attackerMachine.SetInputPump(func() bool {
		if pressed {
			return false
		}
		pressed = true
		attackerMachine.Keyboard().Press('y')
		return true
	})

	// Malware on the victim's machine submits the forged order...
	resp, err := submitRaw(d, forgedTx())
	if err != nil {
		return AttackResult{}, err
	}
	ch, ok := resp.(*core.Challenge)
	if !ok {
		return AttackResult{}, fmt.Errorf("workload: expected challenge, got %T", resp)
	}
	// ...and relays the challenge to the attacker's machine, where the
	// genuine PAL runs and the attacker's human confirms.
	res, err := attackerMgr.Run(core.ConfirmPALName,
		core.MarshalConfirmInput(ch.Nonce, ch.Tx.Marshal(), core.ModeQuote, nil))
	if err != nil {
		return AttackResult{}, err
	}
	if res.PALErr != nil {
		return AttackResult{}, fmt.Errorf("workload: attacker PAL: %w", res.PALErr)
	}
	quote, err := attackerMachine.TPM().Quote(0, attackerAIK, ch.Nonce[:],
		[]int{tpm.PCRDRTM, tpm.PCRApp})
	if err != nil {
		return AttackResult{}, err
	}
	ev := attest.Evidence{Cert: attackerCert, Quote: quote}
	outcome, err := confirmRaw(d, &core.ConfirmTx{
		Nonce: ch.Nonce, Confirmed: true, Mode: core.ModeQuote, Evidence: ev.Marshal(),
	})
	if err != nil {
		return AttackResult{}, err
	}
	label := "no account-platform binding"
	if a.Bind {
		label = "account-platform binding ON"
	}
	return AttackResult{
		Attack:         a.Name(),
		Protections:    label,
		ForgedAccepted: outcome.Accepted && mallorysGain(d),
		Detail:         outcome.Reason,
	}, nil
}
