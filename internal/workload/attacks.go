package workload

import (
	"errors"
	"fmt"

	"unitp/internal/attest"
	"unitp/internal/core"
	"unitp/internal/cryptoutil"
	"unitp/internal/hostos"
	"unitp/internal/platform"
	"unitp/internal/tpm"
)

// AttackResult reports one attack execution for the F3 table.
type AttackResult struct {
	// Attack names the strategy.
	Attack string

	// Protections describes the platform configuration the attack ran
	// against ("full" or the disabled property).
	Protections string

	// ForgedAccepted reports whether the provider executed a
	// transaction (or granted a token) the human never approved — a
	// successful attack.
	ForgedAccepted bool

	// Detail explains what happened.
	Detail string
}

// Attack is one adversarial strategy against the system.
type Attack interface {
	// Name identifies the strategy in tables.
	Name() string

	// Execute mounts the attack on a fresh deployment with the given
	// protections and reports whether the forgery was accepted.
	Execute(cfg DeploymentConfig) (AttackResult, error)
}

// forgedTx is the transaction every attack tries to get executed.
func forgedTx() *core.Transaction {
	return &core.Transaction{
		ID: "forged-1", From: "alice", To: "mallory",
		AmountCents: 50_000, Currency: "EUR", Memo: "totally legit",
	}
}

// protectionLabel renders the ablation column.
func protectionLabel(p *platform.Protections) string {
	if p == nil {
		return "full"
	}
	full := platform.AllProtections()
	switch {
	case *p == full:
		return "full"
	case !p.MeasuredLaunch:
		return "no measured launch"
	case !p.ExclusiveInput:
		return "no exclusive input"
	case !p.DMAProtection:
		return "no DMA protection"
	case !p.LocalityGating:
		return "no locality gating"
	case !p.ExclusiveDisplay:
		return "no exclusive display"
	default:
		return "custom"
	}
}

// mallorysGain checks whether the forged transaction moved money.
func mallorysGain(d *Deployment) bool {
	bal, err := d.Provider.Ledger().Balance("mallory")
	return err == nil && bal > 0
}

// --- Attack 1: transaction generator against a provider without the
// trusted path (the pre-paper baseline).

// TxGeneratorBaseline models malware submitting transactions to a
// provider that does not demand confirmation. It always succeeds — the
// problem statement.
type TxGeneratorBaseline struct{}

// Name implements Attack.
func (TxGeneratorBaseline) Name() string { return "tx-generator (no trusted path)" }

// Execute implements Attack.
func (TxGeneratorBaseline) Execute(cfg DeploymentConfig) (AttackResult, error) {
	// A provider without the scheme: threshold above the forged amount
	// means no challenge is ever issued.
	cfg.ConfirmThresholdCents = 1_000_000_00
	d, err := NewDeployment(cfg)
	if err != nil {
		return AttackResult{}, err
	}
	outcome, err := d.Client.SubmitTransaction(forgedTx())
	if err != nil {
		return AttackResult{}, err
	}
	return AttackResult{
		Attack:         TxGeneratorBaseline{}.Name(),
		Protections:    protectionLabel(cfg.Protections),
		ForgedAccepted: outcome.Accepted && mallorysGain(d),
		Detail:         outcome.Reason,
	}, nil
}

// --- Attack 2: UI-level confirmation (no PAL) defeated by input
// injection.

// UIInjectionBaseline models a provider that "confirms" through the
// normal OS UI: malware injects the y keystroke itself.
type UIInjectionBaseline struct{}

// Name implements Attack.
func (UIInjectionBaseline) Name() string { return "input injection (OS-UI confirmation)" }

// Execute implements Attack.
func (UIInjectionBaseline) Execute(cfg DeploymentConfig) (AttackResult, error) {
	cfg.ConfirmThresholdCents = 1_000_000_00 // provider executes on request
	d, err := NewDeployment(cfg)
	if err != nil {
		return AttackResult{}, err
	}
	// The "confirmation dialog" is an ordinary app; malware types into
	// it.
	inj := hostos.NewInputInjector()
	if err := d.OS.Install(inj); err != nil {
		return AttackResult{}, err
	}
	app := d.OS.RunApp("banking-ui")
	if err := inj.Type("y\n"); err != nil {
		return AttackResult{}, err
	}
	line, ok := app.ReadLine()
	if !ok || line != "y" {
		return AttackResult{}, fmt.Errorf("workload: injection failed: %q", line)
	}
	outcome, err := d.Client.SubmitTransaction(forgedTx())
	if err != nil {
		return AttackResult{}, err
	}
	return AttackResult{
		Attack:         UIInjectionBaseline{}.Name(),
		Protections:    protectionLabel(cfg.Protections),
		ForgedAccepted: outcome.Accepted && mallorysGain(d),
		Detail:         "fake keystroke accepted by OS UI; " + outcome.Reason,
	}, nil
}

// --- Attack 3: transaction generator against the trusted path,
// answering the challenge with an OS-state quote.

// TxGeneratorTrustedPath submits a forged transaction and fabricates
// evidence without running the PAL.
type TxGeneratorTrustedPath struct{}

// Name implements Attack.
func (TxGeneratorTrustedPath) Name() string { return "tx-generator (OS-state quote)" }

// Execute implements Attack.
func (TxGeneratorTrustedPath) Execute(cfg DeploymentConfig) (AttackResult, error) {
	d, err := NewDeployment(cfg)
	if err != nil {
		return AttackResult{}, err
	}
	resp, err := submitRaw(d, forgedTx())
	if err != nil {
		return AttackResult{}, err
	}
	ch, ok := resp.(*core.Challenge)
	if !ok {
		return AttackResult{}, fmt.Errorf("workload: expected challenge, got %T", resp)
	}
	// Quote the current (OS) state and claim it confirms.
	quote, err := d.Machine.TPM().Quote(d.Machine.OSLocality(), d.AIK, ch.Nonce[:],
		[]int{tpm.PCRDRTM, tpm.PCRApp})
	if err != nil {
		return AttackResult{}, err
	}
	ev := attest.Evidence{Cert: d.Cert, Quote: quote}
	outcome, err := confirmRaw(d, &core.ConfirmTx{
		Nonce: ch.Nonce, Confirmed: true, Mode: core.ModeQuote, Evidence: ev.Marshal(),
	})
	if err != nil {
		return AttackResult{}, err
	}
	return AttackResult{
		Attack:         TxGeneratorTrustedPath{}.Name(),
		Protections:    protectionLabel(cfg.Protections),
		ForgedAccepted: outcome.Accepted && mallorysGain(d),
		Detail:         outcome.Reason,
	}, nil
}

// --- Attack 4: input injection into the genuine confirmation PAL.

// PALInputInjection runs the real PAL for the forged transaction and
// tries to inject the confirming keystroke. Blocked by exclusive input;
// succeeds when that protection is ablated.
type PALInputInjection struct{}

// Name implements Attack.
func (PALInputInjection) Name() string { return "input injection (into PAL session)" }

// Execute implements Attack.
func (PALInputInjection) Execute(cfg DeploymentConfig) (AttackResult, error) {
	d, err := NewDeployment(cfg)
	if err != nil {
		return AttackResult{}, err
	}
	inj := hostos.NewInputInjector()
	if err := d.OS.Install(inj); err != nil {
		return AttackResult{}, err
	}
	// The malware's "pump": whenever the PAL waits for the human, try
	// to inject a confirmation instead.
	injected := false
	d.Machine.SetInputPump(func() bool {
		if injected {
			return false
		}
		injected = true
		return inj.Type("y") == nil
	})
	outcome, err := d.Client.SubmitTransaction(forgedTx())
	if err != nil {
		if errors.Is(err, core.ErrPALFailed) {
			return AttackResult{
				Attack:         PALInputInjection{}.Name(),
				Protections:    protectionLabel(cfg.Protections),
				ForgedAccepted: false,
				Detail:         "PAL received no input: injection dead during exclusive session",
			}, nil
		}
		return AttackResult{}, err
	}
	return AttackResult{
		Attack:         PALInputInjection{}.Name(),
		Protections:    protectionLabel(cfg.Protections),
		ForgedAccepted: outcome.Accepted && mallorysGain(d),
		Detail:         outcome.Reason,
	}, nil
}

// --- Attack 5: replay of a captured genuine confirmation.

// ConfirmationReplay captures a legitimate confirmation and replays it
// for a second execution.
type ConfirmationReplay struct{}

// Name implements Attack.
func (ConfirmationReplay) Name() string { return "confirmation replay" }

// Execute implements Attack.
func (ConfirmationReplay) Execute(cfg DeploymentConfig) (AttackResult, error) {
	d, err := NewDeployment(cfg)
	if err != nil {
		return AttackResult{}, err
	}
	var captured []byte
	d.OS.AddInterceptor(func(p []byte) []byte {
		if msg, err := core.DecodeMessage(p); err == nil {
			if _, ok := msg.(*core.ConfirmTx); ok {
				captured = append([]byte{}, p...)
			}
		}
		return p
	})
	user := DefaultUser(d.Rng.Fork("user"))
	legit := &core.Transaction{ID: "legit-1", From: "alice", To: "bob",
		AmountCents: 10_000, Currency: "EUR"}
	user.Intend(legit)
	user.AttachTo(d.Machine)
	if _, err := d.Client.SubmitTransaction(legit); err != nil {
		return AttackResult{}, err
	}
	if captured == nil {
		return AttackResult{}, errors.New("workload: no confirmation captured")
	}
	before, err := d.Provider.Ledger().Balance("bob")
	if err != nil {
		return AttackResult{}, err
	}
	respBytes, err := d.Provider.Handle(captured)
	if err != nil {
		return AttackResult{}, err
	}
	resp, err := core.DecodeMessage(respBytes)
	if err != nil {
		return AttackResult{}, err
	}
	outcome := resp.(*core.Outcome)
	after, err := d.Provider.Ledger().Balance("bob")
	if err != nil {
		return AttackResult{}, err
	}
	// Idempotent proof handling may politely repeat the original
	// outcome; the attack only succeeds if the transaction *executes
	// again* (double spend).
	return AttackResult{
		Attack:         ConfirmationReplay{}.Name(),
		Protections:    protectionLabel(cfg.Protections),
		ForgedAccepted: after != before,
		Detail:         fmt.Sprintf("%s (balance delta %d)", outcome.Reason, after-before),
	}, nil
}

// --- Attack 6: PAL substitution (TOCTOU) — run hostile code, claim the
// approved image.

// PALSubstitution launches an auto-confirming trojan PAL while claiming
// the approved confirmation PAL's image. Defeated by measured launch;
// succeeds when measurement is ablated.
type PALSubstitution struct{}

// Name implements Attack.
func (PALSubstitution) Name() string { return "PAL substitution (TOCTOU)" }

// Execute implements Attack.
func (PALSubstitution) Execute(cfg DeploymentConfig) (AttackResult, error) {
	d, err := NewDeployment(cfg)
	if err != nil {
		return AttackResult{}, err
	}
	resp, err := submitRaw(d, forgedTx())
	if err != nil {
		return AttackResult{}, err
	}
	ch, ok := resp.(*core.Challenge)
	if !ok {
		return AttackResult{}, fmt.Errorf("workload: expected challenge, got %T", resp)
	}
	// The trojan PAL: no human interaction; it simply extends the
	// "user confirmed" binding.
	binding := core.ConfirmationBinding(ch.Nonce, ch.Tx.Digest(), true)
	_, err = d.Machine.LateLaunch([]byte("trojan-auto-confirm"),
		func(env *platform.LaunchEnv) error {
			if err := env.ResetPCR(tpm.PCRApp); err != nil {
				return err
			}
			_, err := env.Extend(tpm.PCRApp, binding)
			return err
		},
		platform.WithClaimedImage(core.ConfirmPALImage()))
	if err != nil {
		return AttackResult{}, err
	}
	quote, err := d.Machine.TPM().Quote(d.Machine.OSLocality(), d.AIK, ch.Nonce[:],
		[]int{tpm.PCRDRTM, tpm.PCRApp})
	if err != nil {
		return AttackResult{}, err
	}
	ev := attest.Evidence{Cert: d.Cert, Quote: quote}
	outcome, err := confirmRaw(d, &core.ConfirmTx{
		Nonce: ch.Nonce, Confirmed: true, Mode: core.ModeQuote, Evidence: ev.Marshal(),
	})
	if err != nil {
		return AttackResult{}, err
	}
	return AttackResult{
		Attack:         PALSubstitution{}.Name(),
		Protections:    protectionLabel(cfg.Protections),
		ForgedAccepted: outcome.Accepted && mallorysGain(d),
		Detail:         outcome.Reason,
	}, nil
}

// --- Attack 7: locality forgery — fake the DRTM registers from the OS.

// LocalityForgery resets and refills PCR 17 from OS level. Defeated by
// chipset locality gating; succeeds when that is ablated.
type LocalityForgery struct{}

// Name implements Attack.
func (LocalityForgery) Name() string { return "DRTM state forgery (locality)" }

// Execute implements Attack.
func (LocalityForgery) Execute(cfg DeploymentConfig) (AttackResult, error) {
	d, err := NewDeployment(cfg)
	if err != nil {
		return AttackResult{}, err
	}
	resp, err := submitRaw(d, forgedTx())
	if err != nil {
		return AttackResult{}, err
	}
	ch, ok := resp.(*core.Challenge)
	if !ok {
		return AttackResult{}, fmt.Errorf("workload: expected challenge, got %T", resp)
	}
	// From OS level, ask the chipset for locality 4 and rebuild the
	// approved PAL's capped PCR-17 chain plus the binding in PCR 23.
	loc := d.Machine.AssertLocality(4)
	dev := d.Machine.TPM()
	detail := "chipset refused elevated locality"
	if err := dev.PCRReset(loc, tpm.PCRDRTM); err == nil {
		m := cryptoutil.SHA1(core.ConfirmPALImage())
		if _, err := dev.Extend(loc, tpm.PCRDRTM, m); err != nil {
			return AttackResult{}, err
		}
		if _, err := dev.Extend(loc, tpm.PCRDRTM, platform.CapDigest); err != nil {
			return AttackResult{}, err
		}
		detail = "forged DRTM chain written from OS"
	}
	if err := dev.PCRReset(d.Machine.OSLocality(), tpm.PCRApp); err != nil {
		return AttackResult{}, err
	}
	binding := core.ConfirmationBinding(ch.Nonce, ch.Tx.Digest(), true)
	if _, err := dev.Extend(d.Machine.OSLocality(), tpm.PCRApp, binding); err != nil {
		return AttackResult{}, err
	}
	quote, err := dev.Quote(d.Machine.OSLocality(), d.AIK, ch.Nonce[:],
		[]int{tpm.PCRDRTM, tpm.PCRApp})
	if err != nil {
		return AttackResult{}, err
	}
	ev := attest.Evidence{Cert: d.Cert, Quote: quote}
	outcome, err := confirmRaw(d, &core.ConfirmTx{
		Nonce: ch.Nonce, Confirmed: true, Mode: core.ModeQuote, Evidence: ev.Marshal(),
	})
	if err != nil {
		return AttackResult{}, err
	}
	return AttackResult{
		Attack:         LocalityForgery{}.Name(),
		Protections:    protectionLabel(cfg.Protections),
		ForgedAccepted: outcome.Accepted && mallorysGain(d),
		Detail:         detail + "; " + outcome.Reason,
	}, nil
}

// --- Attack 8: challenge rewrite against a vigilant user (full MITM).

// ChallengeRewrite rewrites the payee outbound and hides it inbound; the
// user confirms what they see, but the binding mismatch exposes the
// manipulation.
type ChallengeRewrite struct{}

// Name implements Attack.
func (ChallengeRewrite) Name() string { return "submit+challenge rewrite (full MITM)" }

// Execute implements Attack.
func (ChallengeRewrite) Execute(cfg DeploymentConfig) (AttackResult, error) {
	d, err := NewDeployment(cfg)
	if err != nil {
		return AttackResult{}, err
	}
	d.OS.AddInterceptor(func(p []byte) []byte {
		if msg, err := core.DecodeMessage(p); err == nil {
			if sub, ok := msg.(*core.SubmitTx); ok {
				sub.Tx.To = "mallory"
				sub.Tx.AmountCents = 50_000
				if out, err := core.EncodeMessage(sub); err == nil {
					return out
				}
			}
		}
		return p
	})
	d.OS.AddInboundInterceptor(func(p []byte) []byte {
		if msg, err := core.DecodeMessage(p); err == nil {
			if ch, ok := msg.(*core.Challenge); ok {
				ch.Tx.To = "bob"
				ch.Tx.AmountCents = 10_000
				if out, err := core.EncodeMessage(ch); err == nil {
					return out
				}
			}
		}
		return p
	})
	user := DefaultUser(d.Rng.Fork("user"))
	legit := &core.Transaction{ID: "legit-1", From: "alice", To: "bob",
		AmountCents: 10_000, Currency: "EUR"}
	user.Intend(legit)
	user.AttachTo(d.Machine)
	outcome, err := d.Client.SubmitTransaction(legit)
	if err != nil {
		return AttackResult{}, err
	}
	return AttackResult{
		Attack:         ChallengeRewrite{}.Name(),
		Protections:    protectionLabel(cfg.Protections),
		ForgedAccepted: mallorysGain(d),
		Detail:         outcome.Reason,
	}, nil
}

// --- Attack 9: DMA theft of the provisioned HMAC key.

// DMAKeyTheft provisions an HMAC key legitimately, then — during a later
// confirmation session, while the key sits in PAL memory — reads it over
// DMA and forges a confirmation. Defeated by the device exclusion
// vector; succeeds when DMA protection is ablated.
type DMAKeyTheft struct{}

// Name implements Attack.
func (DMAKeyTheft) Name() string { return "DMA theft of provisioned key" }

// Execute implements Attack.
func (DMAKeyTheft) Execute(cfg DeploymentConfig) (AttackResult, error) {
	d, err := NewDeployment(cfg)
	if err != nil {
		return AttackResult{}, err
	}
	if outcome, err := d.Client.ProvisionHMACKey(); err != nil || !outcome.Accepted {
		return AttackResult{}, fmt.Errorf("workload: provisioning failed: %v / %+v", err, outcome)
	}
	if err := d.Client.SetMode(core.ModeHMAC); err != nil {
		return AttackResult{}, err
	}
	// During the victim's next confirmation, the malware-programmed
	// peripheral reads PAL memory while the PAL waits for the human.
	var stolen []byte
	user := DefaultUser(d.Rng.Fork("user"))
	legit := &core.Transaction{ID: "legit-1", From: "alice", To: "bob",
		AmountCents: 10_000, Currency: "EUR"}
	user.Intend(legit)
	// Chain: DMA attempt first, then the human responds normally.
	humanPump := user.MakePump(d.Machine)
	d.Machine.SetInputPump(func() bool {
		if data, err := d.Machine.Memory().DMARead("pal-secrets"); err == nil {
			stolen = data
		}
		return humanPump()
	})
	if _, err := d.Client.SubmitTransaction(legit); err != nil {
		return AttackResult{}, err
	}
	if stolen == nil {
		return AttackResult{
			Attack:         DMAKeyTheft{}.Name(),
			Protections:    protectionLabel(cfg.Protections),
			ForgedAccepted: false,
			Detail:         "DMA read blocked by exclusion vector",
		}, nil
	}
	// Key in hand: forge a confirmation for the forged transaction.
	resp, err := submitRaw(d, forgedTx())
	if err != nil {
		return AttackResult{}, err
	}
	ch, ok := resp.(*core.Challenge)
	if !ok {
		return AttackResult{}, fmt.Errorf("workload: expected challenge, got %T", resp)
	}
	mac := cryptoutil.HMACSHA256(stolen, core.MACMessage(ch.Nonce, ch.Tx.Digest(), true))
	outcome, err := confirmRaw(d, &core.ConfirmTx{
		Nonce: ch.Nonce, Confirmed: true, Mode: core.ModeHMAC,
		PlatformID: d.Cert.PlatformID, MAC: mac,
	})
	if err != nil {
		return AttackResult{}, err
	}
	return AttackResult{
		Attack:         DMAKeyTheft{}.Name(),
		Protections:    protectionLabel(cfg.Protections),
		ForgedAccepted: outcome.Accepted && mallorysGain(d),
		Detail:         "key stolen over DMA; " + outcome.Reason,
	}, nil
}

// submitRaw submits a transaction bypassing the client's confirmation
// logic, returning the provider's raw response.
func submitRaw(d *Deployment, tx *core.Transaction) (any, error) {
	payload, err := core.EncodeMessage(&core.SubmitTx{Tx: tx})
	if err != nil {
		return nil, err
	}
	resp, err := d.Pipe.RoundTrip(payload)
	if err != nil {
		return nil, err
	}
	return core.DecodeMessage(resp)
}

// confirmRaw sends a raw confirmation message.
func confirmRaw(d *Deployment, m *core.ConfirmTx) (*core.Outcome, error) {
	payload, err := core.EncodeMessage(m)
	if err != nil {
		return nil, err
	}
	resp, err := d.Pipe.RoundTrip(payload)
	if err != nil {
		return nil, err
	}
	msg, err := core.DecodeMessage(resp)
	if err != nil {
		return nil, err
	}
	outcome, ok := msg.(*core.Outcome)
	if !ok {
		return nil, fmt.Errorf("workload: expected outcome, got %T", msg)
	}
	return outcome, nil
}

// AllAttacks returns the full strategy suite in table order. Note the
// cuckoo relay: it succeeds against the *default* (unbound) provider
// even with full platform protections — the defence is the provider's
// account-platform binding policy, demonstrated by CuckooRelay{Bind:
// true}.
func AllAttacks() []Attack {
	return []Attack{
		TxGeneratorBaseline{},
		UIInjectionBaseline{},
		TxGeneratorTrustedPath{},
		PALInputInjection{},
		ConfirmationReplay{},
		PALSubstitution{},
		LocalityForgery{},
		ChallengeRewrite{},
		DMAKeyTheft{},
		CuckooRelay{},
	}
}
