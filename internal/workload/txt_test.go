package workload

import (
	"testing"

	"unitp/internal/core"
	"unitp/internal/cryptoutil"
	"unitp/internal/platform"
	"unitp/internal/sim"
)

// sinitImage is the simulated Intel SINIT authenticated code module.
var sinitImage = []byte("intel-sinit-acm-v2.1")

func TestTXTLaunchChainSemantics(t *testing.T) {
	m, err := platform.New(platform.Config{
		Random:     sim.NewRand(61),
		SINITImage: sinitImage,
	})
	if err != nil {
		t.Fatal(err)
	}
	image := []byte("txt-pal")
	report, err := m.LateLaunch(image, func(env *platform.LaunchEnv) error {
		got, err := env.PCRRead(17)
		if err != nil {
			return err
		}
		want := platform.ExpectedPCR17Chain(
			cryptoutil.SHA1(sinitImage), cryptoutil.SHA1(image))
		if got != want {
			t.Fatalf("TXT PCR17 = %v, want %v", got, want)
		}
		// LaunchIdentity agrees with reality.
		if env.LaunchIdentity(cryptoutil.SHA1(image)) != want {
			t.Fatal("LaunchIdentity disagrees with measured chain")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.PALErr != nil {
		t.Fatal(report.PALErr)
	}
	after, err := m.TPM().PCRRead(17)
	if err != nil {
		t.Fatal(err)
	}
	want := platform.ExpectedPCR17ChainCapped(
		cryptoutil.SHA1(sinitImage), cryptoutil.SHA1(image))
	if after != want {
		t.Fatal("capped TXT chain wrong")
	}
	// A SKINIT verifier expectation must NOT match a TXT launch.
	if after == platform.ExpectedPCR17Capped(cryptoutil.SHA1(image)) {
		t.Fatal("TXT chain collided with SKINIT expectation")
	}
}

func TestFullProtocolOnTXTPlatform(t *testing.T) {
	d, err := NewDeployment(DeploymentConfig{
		Seed:       62,
		SINITImage: sinitImage,
	})
	if err != nil {
		t.Fatal(err)
	}
	user := DefaultUser(d.Rng.Fork("user"))
	tx := &core.Transaction{ID: "txt-1", From: "alice", To: "bob",
		AmountCents: 9_900, Currency: "EUR"}
	user.Intend(tx)
	user.AttachTo(d.Machine)
	outcome, err := d.Client.SubmitTransaction(tx)
	if err != nil {
		t.Fatal(err)
	}
	if !outcome.Accepted || !outcome.Authentic {
		t.Fatalf("TXT confirmation outcome = %+v", outcome)
	}

	// HMAC provisioning must also work: the provisioned key is sealed
	// to the TXT launch identity of the consumer PALs.
	if outcome, err := d.Client.ProvisionHMACKey(); err != nil || !outcome.Accepted {
		t.Fatalf("TXT provisioning: %v / %+v", err, outcome)
	}
	if err := d.Client.SetMode(core.ModeHMAC); err != nil {
		t.Fatal(err)
	}
	tx2 := &core.Transaction{ID: "txt-2", From: "alice", To: "bob",
		AmountCents: 4_400, Currency: "EUR"}
	user.Intend(tx2)
	user.AttachTo(d.Machine)
	outcome, err = d.Client.SubmitTransaction(tx2)
	if err != nil {
		t.Fatal(err)
	}
	if !outcome.Accepted {
		t.Fatalf("TXT HMAC confirmation = %+v", outcome)
	}
}

func TestSKINITQuoteRejectedBySINITPolicy(t *testing.T) {
	// A provider configured for TXT clients (SINIT chain) must reject
	// an otherwise-genuine SKINIT launch of the same PAL: the launch
	// environment itself is part of the attested identity.
	txtD, err := NewDeployment(DeploymentConfig{Seed: 63, SINITImage: sinitImage})
	if err != nil {
		t.Fatal(err)
	}
	// Re-approve the policy for TXT on a fresh verifier to be sure,
	// then present evidence from a SKINIT deployment's machine.
	skinitD, err := NewDeployment(DeploymentConfig{Seed: 64})
	if err != nil {
		t.Fatal(err)
	}
	user := DefaultUser(skinitD.Rng.Fork("user"))
	tx := &core.Transaction{ID: "x-1", From: "alice", To: "bob",
		AmountCents: 1_000, Currency: "EUR"}
	user.Intend(tx)
	user.AttachTo(skinitD.Machine)
	// SKINIT deployment confirms fine against its own provider.
	if outcome, err := skinitD.Client.SubmitTransaction(tx); err != nil || !outcome.Accepted {
		t.Fatalf("skinit setup: %v / %+v", err, outcome)
	}
	// The two launch identities are distinct, so the TXT provider's
	// approved set cannot match a SKINIT quote (and vice versa).
	skinitCapped := platform.ExpectedPCR17Capped(cryptoutil.SHA1(core.ConfirmPALImage()))
	txtCapped := platform.ExpectedPCR17ChainCapped(
		cryptoutil.SHA1(sinitImage), cryptoutil.SHA1(core.ConfirmPALImage()))
	if skinitCapped == txtCapped {
		t.Fatal("identities collide")
	}
	if len(txtD.Provider.Verifier().ApprovedPALs()) == 0 {
		t.Fatal("TXT provider approved nothing")
	}
}
