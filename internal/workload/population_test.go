package workload

import (
	"testing"
	"unitp/internal/core"
)

func TestPopulationBaselineFraudSucceeds(t *testing.T) {
	res, err := RunPopulation(PopulationConfig{
		Seed: 1, Clients: 4, InfectedFraction: 0.5, TxPerClient: 2,
		TrustedPath: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Infected != 2 {
		t.Fatalf("infected = %d", res.Infected)
	}
	if res.FraudAttempted != 4 {
		t.Fatalf("fraud attempted = %d", res.FraudAttempted)
	}
	if res.FraudRate() != 1.0 {
		t.Fatalf("baseline fraud rate = %v, want 1.0", res.FraudRate())
	}
	if res.LegitRate() != 1.0 {
		t.Fatalf("baseline legit rate = %v", res.LegitRate())
	}
}

func TestPopulationTrustedPathStopsFraud(t *testing.T) {
	res, err := RunPopulation(PopulationConfig{
		Seed: 2, Clients: 4, InfectedFraction: 0.5, TxPerClient: 2,
		TrustedPath: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FraudAttempted != 4 {
		t.Fatalf("fraud attempted = %d", res.FraudAttempted)
	}
	if res.FraudExecuted != 0 {
		t.Fatalf("trusted path let %d forgeries through", res.FraudExecuted)
	}
	// Legitimate users are unharmed by the scheme.
	if res.LegitRate() != 1.0 {
		t.Fatalf("legit rate under trusted path = %v", res.LegitRate())
	}
	if res.LegitSubmitted != 4 {
		t.Fatalf("legit submitted = %d", res.LegitSubmitted)
	}
}

func TestPopulationNoInfection(t *testing.T) {
	res, err := RunPopulation(PopulationConfig{
		Seed: 3, Clients: 3, InfectedFraction: 0, TxPerClient: 1,
		TrustedPath: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FraudAttempted != 0 || res.FraudExecuted != 0 {
		t.Fatalf("phantom fraud: %+v", res)
	}
	if res.LegitExecuted != 3 {
		t.Fatalf("legit executed = %d", res.LegitExecuted)
	}
	if res.FraudRate() != 0 || res.LegitRate() != 1 {
		t.Fatalf("rates = %v / %v", res.FraudRate(), res.LegitRate())
	}
}

func TestPopulationValidation(t *testing.T) {
	if _, err := RunPopulation(PopulationConfig{Clients: 0, TxPerClient: 1}); err == nil {
		t.Fatal("zero clients accepted")
	}
	if _, err := RunPopulation(PopulationConfig{Clients: 1, TxPerClient: 0}); err == nil {
		t.Fatal("zero transactions accepted")
	}
}

func TestCyclicKeySourceCycles(t *testing.T) {
	src, err := newCyclicKeySource(2)
	if err != nil {
		t.Fatal(err)
	}
	k1, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	k3, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Fatal("consecutive keys identical")
	}
	if k1 != k3 {
		t.Fatal("source did not cycle")
	}
}

func TestUserTypesPINAtSecurePrompt(t *testing.T) {
	d, err := NewDeployment(DeploymentConfig{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	user := DefaultUser(d.Rng.Fork("user"))
	user.AttachTo(d.Machine)
	outcome, err := d.Client.Login("alice")
	if err != nil {
		t.Fatal(err)
	}
	if !outcome.Accepted || outcome.Token == "" {
		t.Fatalf("login outcome = %+v", outcome)
	}
}

func TestUserWrongPINFailsLogin(t *testing.T) {
	d, err := NewDeployment(DeploymentConfig{Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	user := DefaultUser(d.Rng.Fork("user"))
	user.PIN = "0000" // forgot the PIN
	user.AttachTo(d.Machine)
	outcome, err := d.Client.Login("alice")
	if err != nil {
		t.Fatal(err)
	}
	if outcome.Accepted {
		t.Fatal("wrong PIN logged in")
	}
}

func TestUserBatchIntentsApproveOnlyIntended(t *testing.T) {
	// The user queues two payments; malware slips a third into the
	// batch. Reviewing each entry on the trusted prompt, the user
	// approves theirs and denies the stranger.
	d, err := NewDeployment(DeploymentConfig{Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	intended := []core.Transaction{
		{ID: "b1", From: "alice", To: "bob", AmountCents: 10_000, Currency: "EUR"},
		{ID: "b2", From: "alice", To: "bob", AmountCents: 20_000, Currency: "EUR"},
	}
	injected := core.Transaction{ID: "evil", From: "alice", To: "mallory",
		AmountCents: 66_600, Currency: "EUR"}
	batch := []core.Transaction{intended[0], injected, intended[1]}

	user := DefaultUser(d.Rng.Fork("user"))
	user.IntendBatch(intended)
	user.AttachTo(d.Machine)

	outcome, decisions, err := d.Client.SubmitBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if !outcome.Authentic {
		t.Fatalf("outcome = %+v", outcome)
	}
	if !decisions[0] || decisions[1] || !decisions[2] {
		t.Fatalf("decisions = %v", decisions)
	}
	if bal, _ := d.Provider.Ledger().Balance("mallory"); bal != 0 {
		t.Fatalf("mallory got %d", bal)
	}
	if bal, _ := d.Provider.Ledger().Balance("bob"); bal != 30_000 {
		t.Fatalf("bob = %d", bal)
	}
}
