package workload

import (
	"errors"
	"fmt"
	"time"

	"unitp/internal/attest"
	"unitp/internal/core"
	"unitp/internal/cryptoutil"
	"unitp/internal/faults"
	"unitp/internal/fleet"
	"unitp/internal/flicker"
	"unitp/internal/hostos"
	"unitp/internal/netsim"
	"unitp/internal/obs"
	"unitp/internal/platform"
	"unitp/internal/sim"
	"unitp/internal/store"
	"unitp/internal/tpm"
)

// FleetConfig parameterizes a sharded, replicated deployment: one
// client platform in front of a fleet.Router over N shards, each shard
// a primary provider plus followers fed by synchronous WAL shipping.
type FleetConfig struct {
	// Seed drives all randomness deterministically.
	Seed uint64

	// Shards is the partition count (default 2). Followers is the
	// replica count per shard (default 1).
	Shards    int
	Followers int

	// ConfirmThresholdCents, NonceTTL, Accounts, Credentials, and
	// SnapshotEvery configure every shard's provider exactly as their
	// DeploymentConfig counterparts configure the single provider.
	// Every shard is seeded with the full account and credential set:
	// the ring decides which shard's copy a user actually lives on, and
	// per-shard balance conservation stays checkable no matter where
	// the ring sends each account.
	ConfirmThresholdCents int64
	NonceTTL              time.Duration
	Accounts              map[string]int64
	Credentials           map[string]string
	SnapshotEvery         int

	// NewBackend opens storage for one role of one shard ("primary",
	// "follower-<i>", or "manifest" — the shard's durable restart
	// pointer). nil gives every role its own store.MemBackend.
	NewBackend func(shard int, role string) (store.Backend, error)

	// Plan schedules fleet faults (primary kills, replication
	// partitions, slow followers). When set, replication links are
	// netsim pipes carrying the plan's injectors; otherwise they are
	// direct in-process calls.
	Plan *faults.FleetPlan

	// Link is the client↔router path (default broadband); Retry and
	// Recovery configure the client exactly as in DeploymentConfig.
	Link     netsim.Link
	Retry    *netsim.RetryPolicy
	Recovery core.RecoveryConfig

	// VirtualNodes tunes the router's ring (0 = default).
	VirtualNodes int

	// Metrics and Tracer instrument every subsystem; both may be nil.
	Metrics *obs.Registry
	Tracer  *obs.Tracer
}

// FleetDeployment is a complete simulated sharded system: one client
// machine and CA, a router, and N replicated shards.
type FleetDeployment struct {
	// Clock is the shared virtual clock; Rng the deterministic root.
	Clock *sim.VirtualClock
	Rng   *sim.Rand

	// Machine, OS, Manager, CA, AIK, Cert are the client platform —
	// identical in role to their Deployment counterparts.
	Machine *platform.Machine
	OS      *hostos.OS
	Manager *flicker.Manager
	CA      *attest.PrivacyCA
	AIK     tpm.Handle
	Cert    *attest.AIKCert

	// Router fronts the shards; Client speaks to it over Pipe.
	Router *fleet.Router
	Client *core.Client
	Pipe   *netsim.Pipe
}

// NewFleet wires a sharded deployment. Each shard's provider gets its
// own RSA key and random fork but shares the client platform's CA and
// PAL approvals; failover rebuilds providers with the same key so
// clients never see the shard's identity change.
func NewFleet(cfg FleetConfig) (*FleetDeployment, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 2
	}
	if cfg.Followers <= 0 {
		cfg.Followers = 1
	}
	if cfg.Link.Name == "" {
		cfg.Link = netsim.LinkBroadband()
	}
	if cfg.NewBackend == nil {
		cfg.NewBackend = func(int, string) (store.Backend, error) {
			return store.NewMemBackend(), nil
		}
	}

	clock := sim.NewVirtualClock()
	rng := sim.NewRand(cfg.Seed ^ 0xF1EE7)
	if cfg.Tracer != nil {
		cfg.Tracer.SetIDBase(rng.Fork("trace").Uint64())
	}

	machine, err := platform.New(platform.Config{
		Clock:  clock,
		Random: rng.Fork("machine"),
	})
	if err != nil {
		return nil, fmt.Errorf("workload: fleet machine: %w", err)
	}
	osys := hostos.New(machine)
	manager := flicker.NewManager(machine)

	caKey, err := tpm.PooledKeySource().Next()
	if err != nil {
		return nil, fmt.Errorf("workload: fleet CA key: %w", err)
	}
	ca := attest.NewPrivacyCA("unitp-privacy-ca", caKey, clock, rng.Fork("ca"))
	if err := ca.EnrollEK("client-platform", machine.TPM().EK()); err != nil {
		return nil, fmt.Errorf("workload: fleet enroll: %w", err)
	}
	aik, aikPub, err := machine.TPM().CreateAIK()
	if err != nil {
		return nil, fmt.Errorf("workload: fleet AIK: %w", err)
	}
	cert, err := ca.CertifyAIK("client-platform", machine.TPM().EK(), aikPub)
	if err != nil {
		return nil, fmt.Errorf("workload: fleet certify: %w", err)
	}

	accounts := cfg.Accounts
	if accounts == nil {
		accounts = map[string]int64{"alice": 1_000_000, "bob": 0, "mallory": 0}
	}
	creds := cfg.Credentials
	if creds == nil {
		creds = map[string]string{"alice": DefaultPIN}
	}

	shards := make([]*fleet.Shard, 0, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		shard, err := buildFleetShard(s, cfg, clock, rng, machine, ca, accounts, creds)
		if err != nil {
			return nil, err
		}
		shards = append(shards, shard)
	}

	d := &FleetDeployment{
		Clock: clock, Rng: rng, Machine: machine, OS: osys,
		Manager: manager, CA: ca, AIK: aik, Cert: cert,
		Router: fleet.NewRouter(shards, cfg.VirtualNodes, cfg.Metrics),
	}
	d.Pipe = netsim.NewPipe(netsim.Config{
		Clock:   clock,
		Random:  rng.Fork("net"),
		Link:    cfg.Link,
		Retry:   cfg.Retry,
		Metrics: cfg.Metrics,
		Tracer:  cfg.Tracer,
	}, d.handle)

	recovery := cfg.Recovery
	if recovery.Rng == nil {
		recovery.Rng = rng.Fork("recovery")
	}
	client, err := core.NewClient(core.ClientConfig{
		Manager:   manager,
		OS:        osys,
		Transport: d.Pipe,
		AIK:       aik,
		Cert:      cert,
		Recovery:  recovery,
		Tracer:    cfg.Tracer,
	})
	if err != nil {
		return nil, fmt.Errorf("workload: fleet client: %w", err)
	}
	d.Client = client
	return d, nil
}

// buildFleetShard assembles one shard's config and constructs it.
func buildFleetShard(s int, cfg FleetConfig, clock *sim.VirtualClock, rng *sim.Rand,
	machine *platform.Machine, ca *attest.PrivacyCA,
	accounts map[string]int64, creds map[string]string) (*fleet.Shard, error) {

	provKey, err := tpm.PooledKeySource().Next()
	if err != nil {
		return nil, fmt.Errorf("workload: shard %d key: %w", s, err)
	}
	pcfg := core.ProviderConfig{
		Name:                  fmt.Sprintf("sim-bank-shard%d", s),
		CAPub:                 ca.PublicKey(),
		Key:                   provKey,
		Clock:                 clock,
		NonceTTL:              cfg.NonceTTL,
		ConfirmThresholdCents: cfg.ConfirmThresholdCents,
		SnapshotEvery:         cfg.SnapshotEvery,
		Metrics:               cfg.Metrics,
		Tracer:                cfg.Tracer,
	}
	approve := func(p *core.Provider) {
		chain := func(name string, image []byte) {
			p.Verifier().ApprovePALChain(name,
				machine.LaunchChain(cryptoutil.SHA1(image))...)
		}
		chain(core.ConfirmPALName, core.ConfirmPALImage())
		chain(core.PresencePALName, core.PresencePALImage())
		chain(core.ProvisionPALName, core.ProvisionPALImage(p.PublicKeyDER()))
		chain(core.PINPALName, core.PINPALImage())
		chain(core.BatchPALName, core.BatchPALImage())
	}

	scfg := fleet.ShardConfig{
		Index:     s,
		Followers: cfg.Followers,
		Plan:      cfg.Plan,
		Metrics:   cfg.Metrics,
		Tracer:    cfg.Tracer,
		Clock:     clock,
		NewBackend: func(role string) (store.Backend, error) {
			return cfg.NewBackend(s, role)
		},
		BuildPrimary: func(epoch uint64) (*core.Provider, error) {
			pc := pcfg
			pc.Epoch = epoch
			pc.Random = rng.Fork(fmt.Sprintf("shard%d-life-%d", s, epoch))
			p := core.NewProvider(pc)
			approve(p)
			for name, cents := range accounts {
				if err := p.Ledger().CreateAccount(name, cents); err != nil {
					return nil, fmt.Errorf("workload: shard %d account %s: %w", s, name, err)
				}
			}
			for user, pin := range creds {
				if err := p.EnrollCredential(user, pin); err != nil {
					return nil, fmt.Errorf("workload: shard %d credential %s: %w", s, user, err)
				}
			}
			return p, nil
		},
		RestorePrimary: func(epoch uint64, st *store.Store) (*core.Provider, error) {
			// Accounts, credentials, and caches travel in the replicated
			// state; only configuration that is not state — the key and
			// the PAL approvals — is re-applied.
			pc := pcfg
			pc.Epoch = epoch
			pc.Random = rng.Fork(fmt.Sprintf("shard%d-life-%d", s, epoch))
			p, err := core.RestoreProvider(pc, st)
			if err != nil {
				return nil, err
			}
			approve(p)
			return p, nil
		},
	}
	if cfg.Plan != nil {
		plan := cfg.Plan
		netRng := rng.Fork(fmt.Sprintf("shard%d-repnet", s))
		scfg.NewLink = func(shard, follower int, h netsim.Handler) netsim.Transport {
			return netsim.NewPipe(netsim.Config{
				Clock:  clock,
				Random: netRng.Fork(fmt.Sprintf("link-%d-%d", shard, follower)),
				Link:   netsim.LinkLoopback(),
				Faults: plan.LinkInjector(shard, follower),
			}, h)
		}
	}
	shard, err := fleet.NewShard(scfg)
	if err != nil {
		return nil, err
	}
	return shard, nil
}

// handle is the pipe's server side: the router, with residual primary
// deaths surfacing as connection resets — transient from the client's
// point of view, exactly like a single provider's crash — so the
// client transport retries through the (by then failed-over) router.
func (d *FleetDeployment) handle(req []byte) ([]byte, error) {
	resp, err := d.Router.Handle(req)
	if err != nil && (errors.Is(err, store.ErrCrashed) || fleet.FailoverTrigger(err)) {
		return nil, netsim.ErrReset
	}
	return resp, err
}
