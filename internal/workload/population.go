package workload

import (
	"crypto/rsa"
	"fmt"

	"unitp/internal/attest"
	"unitp/internal/core"
	"unitp/internal/cryptoutil"
	"unitp/internal/flicker"
	"unitp/internal/hostos"
	"unitp/internal/netsim"
	"unitp/internal/platform"
	"unitp/internal/sim"
	"unitp/internal/tpm"
)

// cyclicKeySource reuses a small fixed key set. Population experiments
// need many simulated platforms whose RSA keys are irrelevant to the
// measured quantity (fraud outcomes); cycling a cached pool keeps a
// 100-client world affordable. Never use outside simulation.
type cyclicKeySource struct {
	keys []*rsa.PrivateKey
	next int
}

func newCyclicKeySource(n int) (*cyclicKeySource, error) {
	keys := make([]*rsa.PrivateKey, 0, n)
	for i := 0; i < n; i++ {
		k, err := cryptoutil.PooledKey(100 + i)
		if err != nil {
			return nil, err
		}
		keys = append(keys, k)
	}
	return &cyclicKeySource{keys: keys}, nil
}

// Next implements tpm.KeySource.
func (s *cyclicKeySource) Next() (*rsa.PrivateKey, error) {
	k := s.keys[s.next%len(s.keys)]
	s.next++
	return k, nil
}

// PopulationConfig parameterizes a multi-client fraud simulation.
type PopulationConfig struct {
	// Seed drives the world deterministically.
	Seed uint64

	// Clients is the number of client machines.
	Clients int

	// InfectedFraction is the share of clients carrying a transaction
	// generator.
	InfectedFraction float64

	// TxPerClient is how many legitimate transactions each clean
	// client's user makes (and how many forgeries each infected
	// client's malware attempts).
	TxPerClient int

	// TrustedPath selects whether the provider demands trusted-path
	// confirmation (true) or executes submissions directly (false —
	// the pre-paper baseline world).
	TrustedPath bool
}

// PopulationResult aggregates one world's outcomes.
type PopulationResult struct {
	// Clients and Infected describe the world.
	Clients  int
	Infected int

	// LegitSubmitted / LegitExecuted count genuine user transactions.
	LegitSubmitted int
	LegitExecuted  int

	// FraudAttempted / FraudExecuted count transaction-generator
	// forgeries.
	FraudAttempted int
	FraudExecuted  int
}

// FraudRate returns the fraction of forgeries that executed.
func (r *PopulationResult) FraudRate() float64 {
	if r.FraudAttempted == 0 {
		return 0
	}
	return float64(r.FraudExecuted) / float64(r.FraudAttempted)
}

// LegitRate returns the fraction of genuine transactions that executed.
func (r *PopulationResult) LegitRate() float64 {
	if r.LegitSubmitted == 0 {
		return 0
	}
	return float64(r.LegitExecuted) / float64(r.LegitSubmitted)
}

// RunPopulation simulates a provider serving a population of clients, a
// fraction of which are infected with transaction generators, and
// reports how much fraud executes with and without the trusted path —
// the deployment-scale argument of the paper (experiment F7).
func RunPopulation(cfg PopulationConfig) (*PopulationResult, error) {
	if cfg.Clients <= 0 || cfg.TxPerClient <= 0 {
		return nil, fmt.Errorf("workload: population needs clients and transactions")
	}
	clock := sim.NewVirtualClock()
	rng := sim.NewRand(cfg.Seed ^ 0x90B)
	keys, err := newCyclicKeySource(4)
	if err != nil {
		return nil, err
	}

	caKey, err := keys.Next()
	if err != nil {
		return nil, err
	}
	ca := attest.NewPrivacyCA("population-ca", caKey, clock, rng.Fork("ca"))

	provKey, err := keys.Next()
	if err != nil {
		return nil, err
	}
	threshold := int64(0)
	if !cfg.TrustedPath {
		threshold = 1 << 40 // provider executes everything on request
	}
	provider := core.NewProvider(core.ProviderConfig{
		Name:                  "population-bank",
		CAPub:                 ca.PublicKey(),
		Key:                   provKey,
		Clock:                 clock,
		Random:                rng.Fork("provider"),
		ConfirmThresholdCents: threshold,
	})
	provider.Verifier().ApprovePAL(core.ConfirmPALName, cryptoutil.SHA1(core.ConfirmPALImage()))

	res := &PopulationResult{
		Clients:  cfg.Clients,
		Infected: int(float64(cfg.Clients) * cfg.InfectedFraction),
	}
	for i := 0; i < cfg.Clients; i++ {
		account := fmt.Sprintf("acct-%03d", i)
		if err := provider.Ledger().CreateAccount(account, 1_000_000_00); err != nil {
			return nil, err
		}
	}
	if err := provider.Ledger().CreateAccount("merchant", 0); err != nil {
		return nil, err
	}
	if err := provider.Ledger().CreateAccount("mallory", 0); err != nil {
		return nil, err
	}

	for i := 0; i < cfg.Clients; i++ {
		infected := i < res.Infected
		if err := runPopulationClient(i, infected, cfg, clock, rng, keys, ca, provider, res); err != nil {
			return nil, fmt.Errorf("workload: client %d: %w", i, err)
		}
	}
	return res, nil
}

// runPopulationClient simulates one client's activity.
func runPopulationClient(idx int, infected bool, cfg PopulationConfig, clock sim.Clock,
	rng *sim.Rand, keys tpm.KeySource, ca *attest.PrivacyCA, provider *core.Provider,
	res *PopulationResult) error {

	clientRng := rng.Fork(fmt.Sprintf("client-%d", idx))
	machine, err := platform.New(platform.Config{
		Clock:  clock,
		Random: clientRng.Fork("machine"),
		Keys:   keys,
	})
	if err != nil {
		return err
	}
	osys := hostos.New(machine)
	platformID := fmt.Sprintf("pop-platform-%03d", idx)
	if err := ca.EnrollEK(platformID, machine.TPM().EK()); err != nil {
		return err
	}
	aik, aikPub, err := machine.TPM().CreateAIK()
	if err != nil {
		return err
	}
	cert, err := ca.CertifyAIK(platformID, machine.TPM().EK(), aikPub)
	if err != nil {
		return err
	}
	pipe := netsim.NewPipe(netsim.Config{
		Clock:  clock,
		Random: clientRng.Fork("net"),
		Link:   netsim.LinkBroadband(),
	}, provider.Handle)
	account := fmt.Sprintf("acct-%03d", idx)

	if infected {
		// The transaction generator: submits forgeries autonomously.
		// Under the trusted path it answers challenges with an
		// OS-state quote (the best it can do without a human).
		for k := 0; k < cfg.TxPerClient; k++ {
			res.FraudAttempted++
			forged := &core.Transaction{
				ID:   fmt.Sprintf("fraud-%03d-%d", idx, k),
				From: account, To: "mallory",
				AmountCents: 25_000, Currency: "EUR",
			}
			executed, err := attemptFraud(pipe, machine, aik, cert, forged)
			if err != nil {
				return err
			}
			if executed {
				res.FraudExecuted++
			}
		}
		return nil
	}

	client, err := core.NewClient(core.ClientConfig{
		Manager:   flicker.NewManager(machine),
		OS:        osys,
		Transport: pipe,
		AIK:       aik,
		Cert:      cert,
	})
	if err != nil {
		return err
	}

	// The clean client: a real user making real purchases.
	user := DefaultUser(clientRng.Fork("user"))
	user.AttachTo(machine)
	for k := 0; k < cfg.TxPerClient; k++ {
		res.LegitSubmitted++
		tx := &core.Transaction{
			ID:   fmt.Sprintf("buy-%03d-%d", idx, k),
			From: account, To: "merchant",
			AmountCents: int64(1_000 + clientRng.Intn(40_000)), Currency: "EUR",
		}
		user.Intend(tx)
		outcome, err := client.SubmitTransaction(tx)
		if err != nil {
			return err
		}
		if outcome.Accepted {
			res.LegitExecuted++
		}
	}
	return nil
}

// attemptFraud plays the transaction generator: submit, and if
// challenged, answer with an OS-state quote (no human, no PAL).
func attemptFraud(pipe netsim.Transport, machine *platform.Machine, aik tpm.Handle,
	cert *attest.AIKCert, forged *core.Transaction) (bool, error) {

	payload, err := core.EncodeMessage(&core.SubmitTx{Tx: forged})
	if err != nil {
		return false, err
	}
	respBytes, err := pipe.RoundTrip(payload)
	if err != nil {
		return false, err
	}
	resp, err := core.DecodeMessage(respBytes)
	if err != nil {
		return false, err
	}
	switch m := resp.(type) {
	case *core.Outcome:
		return m.Accepted, nil
	case *core.Challenge:
		quote, err := machine.TPM().Quote(machine.OSLocality(), aik, m.Nonce[:],
			[]int{tpm.PCRDRTM, tpm.PCRApp})
		if err != nil {
			return false, err
		}
		ev := attest.Evidence{Cert: cert, Quote: quote}
		confirmBytes, err := core.EncodeMessage(&core.ConfirmTx{
			Nonce: m.Nonce, Confirmed: true, Mode: core.ModeQuote, Evidence: ev.Marshal(),
		})
		if err != nil {
			return false, err
		}
		respBytes, err := pipe.RoundTrip(confirmBytes)
		if err != nil {
			return false, err
		}
		resp, err := core.DecodeMessage(respBytes)
		if err != nil {
			return false, err
		}
		outcome, ok := resp.(*core.Outcome)
		if !ok {
			return false, fmt.Errorf("workload: unexpected %T", resp)
		}
		return outcome.Accepted, nil
	default:
		return false, fmt.Errorf("workload: unexpected %T", resp)
	}
}
