package obs

import (
	"sync"
	"time"

	"unitp/internal/sim"
)

// Span is one completed, named phase of a session: suspend, SKINIT,
// PAL run, quote, provider verify, ledger apply, WAL sync, ...
type Span struct {
	// Name identifies the phase.
	Name string

	// Start is when the phase began (session clock).
	Start time.Time

	// Dur is how long it lasted.
	Dur time.Duration
}

// Event is a point annotation on a session: an injected fault, a
// transport retry, a session-level degradation, a crash recovery.
type Event struct {
	// Name identifies the event kind (e.g. "net.drop",
	// "session.retry").
	Name string

	// Detail carries free-form context (attempt number, fault
	// direction, error text).
	Detail string

	// At is when it happened (session clock).
	At time.Time
}

// maxPerTrace bounds spans and events retained per session, so a
// runaway or never-finished session cannot grow without bound; excess
// records are counted, not stored.
const maxPerTrace = 4096

// SessionTrace collects the spans and events of one correlated session.
// All methods are safe for concurrent use and safe on a nil receiver
// (they no-op), so instrumented code never branches on "is tracing on".
type SessionTrace struct {
	tracer  *Tracer
	clock   sim.Clock
	id      SessionID
	adopted bool

	mu      sync.Mutex
	label   string
	started time.Time
	spans   []Span
	events  []Event
	dropped int
	done    bool
}

// ID returns the session's correlation ID (zero on nil).
func (t *SessionTrace) ID() SessionID {
	if t == nil {
		return 0
	}
	return t.id
}

// Adopted reports whether this trace was created server-side for a
// remotely minted correlation ID (see Tracer.Adopt).
func (t *SessionTrace) Adopted() bool {
	if t == nil {
		return false
	}
	return t.adopted
}

// SetLabel names the trace for humans ("submit", "recovery", ...).
func (t *SessionTrace) SetLabel(label string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.label = label
	t.mu.Unlock()
}

// Label returns the trace's human name.
func (t *SessionTrace) Label() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.label
}

// now reads the session clock.
func (t *SessionTrace) now() time.Time { return t.clock.Now() }

// ActiveSpan is an open span; End completes and records it. A nil
// ActiveSpan (from a nil trace) no-ops.
type ActiveSpan struct {
	t     *SessionTrace
	name  string
	start time.Time
}

// StartSpan opens a span now; the caller must End it.
func (t *SessionTrace) StartSpan(name string) *ActiveSpan {
	if t == nil {
		return nil
	}
	return &ActiveSpan{t: t, name: name, start: t.now()}
}

// End completes the span and records it on its trace.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.t.SpanAt(s.name, s.start, s.t.now().Sub(s.start))
}

// SpanAt records an already-timed span — how back-dated phase
// breakdowns (the PAL launch report) become spans after the fact.
func (t *SessionTrace) SpanAt(name string, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= maxPerTrace {
		t.dropped++
		return
	}
	t.spans = append(t.spans, Span{Name: name, Start: start, Dur: dur})
}

// Event records a point annotation now.
func (t *SessionTrace) Event(name, detail string) {
	if t == nil {
		return
	}
	at := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.events) >= maxPerTrace {
		t.dropped++
		return
	}
	t.events = append(t.events, Event{Name: name, Detail: detail, At: at})
}

// Finish completes the session and moves it into its tracer's completed
// ring. Idempotent; spans recorded after Finish still land on the trace
// object (late provider-side spans on a shared in-process tracer).
func (t *SessionTrace) Finish() {
	if t == nil || t.tracer == nil {
		return
	}
	t.tracer.finish(t)
}

// snapshot copies the record lists for export.
func (t *SessionTrace) snapshot() (label string, spans []Span, events []Event, dropped int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.label, append([]Span(nil), t.spans...), append([]Event(nil), t.events...), t.dropped
}

// Spans returns a copy of the recorded spans (nil on a nil trace).
func (t *SessionTrace) Spans() []Span {
	if t == nil {
		return nil
	}
	_, spans, _, _ := t.snapshot()
	return spans
}

// Events returns a copy of the recorded point events (nil on a nil
// trace).
func (t *SessionTrace) Events() []Event {
	if t == nil {
		return nil
	}
	_, _, events, _ := t.snapshot()
	return events
}

// TracerStats counts tracer activity.
type TracerStats struct {
	// Started counts sessions minted locally.
	Started int
	// Adopted counts sessions created for remote correlation IDs.
	Adopted int
	// Finished counts sessions moved to the completed ring.
	Finished int
	// Evicted counts active sessions force-finished by the active
	// bound.
	Evicted int
}

// Tracer mints and collects session traces. Completed traces live in a
// bounded ring (oldest evicted first); active traces are bounded too —
// sessions abandoned without Finish are force-completed once the active
// set outgrows four times the ring capacity. All methods are safe for
// concurrent use and on a nil receiver.
type Tracer struct {
	capacity int

	mu     sync.Mutex
	nextID uint64
	base   uint64
	active map[SessionID]*SessionTrace
	order  []SessionID // active sessions in creation order
	ring   []*SessionTrace
	stats  TracerStats
}

// NewTracer builds a tracer whose completed ring holds capacity traces
// (default 256).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	return &Tracer{capacity: capacity, active: make(map[SessionID]*SessionTrace)}
}

// SetIDBase salts minted correlation IDs so independent processes do
// not collide. Deterministic experiments derive the salt from their
// seed; commands use entropy.
func (tr *Tracer) SetIDBase(base uint64) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.base = base
	tr.mu.Unlock()
}

// StartSession mints a locally owned session trace on the given clock
// (nil clock = wall time). Nil tracer returns a nil trace, whose
// methods all no-op.
func (tr *Tracer) StartSession(clock sim.Clock) *SessionTrace {
	if tr == nil {
		return nil
	}
	if clock == nil {
		clock = sim.WallClock{}
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.nextID++
	id := SessionID(tr.base ^ tr.nextID)
	t := &SessionTrace{tracer: tr, clock: clock, id: id, started: clock.Now()}
	tr.stats.Started++
	tr.registerLocked(t)
	return t
}

// Adopt returns the active trace for a remotely minted correlation ID,
// creating one (marked adopted) on first sight — the provider side of
// propagation.
func (tr *Tracer) Adopt(id SessionID, clock sim.Clock) *SessionTrace {
	if tr == nil {
		return nil
	}
	if clock == nil {
		clock = sim.WallClock{}
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if t, ok := tr.active[id]; ok {
		return t
	}
	t := &SessionTrace{tracer: tr, clock: clock, id: id, adopted: true, started: clock.Now()}
	tr.stats.Adopted++
	tr.registerLocked(t)
	return t
}

// Lookup returns the active trace for id, or nil — the transport's way
// to annotate sessions it only knows by header.
func (tr *Tracer) Lookup(id SessionID) *SessionTrace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.active[id]
}

// Event annotates the active session id, if any.
func (tr *Tracer) Event(id SessionID, name, detail string) {
	tr.Lookup(id).Event(name, detail)
}

// registerLocked tracks a new active trace and enforces the active
// bound. Caller holds tr.mu.
func (tr *Tracer) registerLocked(t *SessionTrace) {
	tr.active[t.id] = t
	tr.order = append(tr.order, t.id)
	for len(tr.active) > 4*tr.capacity {
		// Force-finish the oldest still-active session.
		var oldest *SessionTrace
		for len(tr.order) > 0 {
			id := tr.order[0]
			tr.order = tr.order[1:]
			if got, ok := tr.active[id]; ok {
				oldest = got
				break
			}
		}
		if oldest == nil {
			break
		}
		tr.stats.Evicted++
		tr.finishLocked(oldest)
	}
}

// finish moves a trace to the completed ring exactly once.
func (tr *Tracer) finish(t *SessionTrace) {
	t.mu.Lock()
	already := t.done
	t.done = true
	t.mu.Unlock()
	if already {
		return
	}
	tr.mu.Lock()
	tr.finishLocked(t)
	tr.mu.Unlock()
}

// finishLocked records t as completed. Caller holds tr.mu; t.done may
// be set by the caller (eviction path sets it here).
func (tr *Tracer) finishLocked(t *SessionTrace) {
	t.mu.Lock()
	t.done = true
	t.mu.Unlock()
	delete(tr.active, t.id)
	tr.stats.Finished++
	tr.ring = append(tr.ring, t)
	if over := len(tr.ring) - tr.capacity; over > 0 {
		tr.ring = append([]*SessionTrace(nil), tr.ring[over:]...)
	}
}

// Completed returns up to n of the most recently completed traces,
// oldest first (n <= 0 means all retained).
func (tr *Tracer) Completed(n int) []*SessionTrace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := tr.ring
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return append([]*SessionTrace(nil), out...)
}

// All returns every retained trace — completed ring plus still-active
// sessions — oldest completed first. Exports use it so an aborted run
// still shows its in-flight sessions.
func (tr *Tracer) All() []*SessionTrace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := append([]*SessionTrace(nil), tr.ring...)
	for _, id := range tr.order {
		if t, ok := tr.active[id]; ok {
			out = append(out, t)
		}
	}
	return out
}

// ActiveCount reports sessions not yet finished.
func (tr *Tracer) ActiveCount() int {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.active)
}

// Stats returns a copy of the tracer's counters.
func (tr *Tracer) Stats() TracerStats {
	if tr == nil {
		return TracerStats{}
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.stats
}
