package obs

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
)

// MaxTraceN bounds /trace?n=K. The tracer itself retains far fewer
// completed traces than this, so any larger request is either a typo or
// a caller probing for an amplification vector; both get a 400 rather
// than a silently clamped answer.
const MaxTraceN = 65536

// Readiness is the answer /readyz serves: whether the process should
// receive traffic, with supporting detail (store attached, WAL syncing,
// last snapshot age, ...).
type Readiness struct {
	Ready  bool           `json:"ready"`
	Detail map[string]any `json:"detail,omitempty"`
}

// AdminConfig wires the admin plane's data sources.
type AdminConfig struct {
	// Metrics backs /metrics. nil serves an empty snapshot.
	Metrics *Registry

	// Tracer backs /trace. nil serves an empty trace.
	Tracer *Tracer

	// Readiness backs /readyz. nil means always ready.
	Readiness func() Readiness

	// Logger receives request logs. nil disables them.
	Logger *slog.Logger
}

// runtimeSnapshot is the Go runtime section of /metrics.
type runtimeSnapshot struct {
	Goroutines   int     `json:"goroutines"`
	HeapAllocMB  float64 `json:"heap_alloc_mb"`
	TotalAllocMB float64 `json:"total_alloc_mb"`
	NumGC        uint32  `json:"num_gc"`
	GCPauseMS    float64 `json:"gc_pause_total_ms"`
}

// metricsPayload is the full /metrics JSON document.
type metricsPayload struct {
	MetricsSnapshot
	Runtime runtimeSnapshot `json:"runtime"`
	Tracer  TracerStats     `json:"tracer"`
}

// NewAdminMux builds the admin-plane HTTP handler:
//
//	/metrics       live counters/gauges/histograms + runtime stats
//	               (JSON; ?format=text for aligned tables)
//	/healthz       liveness (always 200 while the process serves)
//	/readyz        readiness (503 + detail when not ready)
//	/trace?n=K     last K completed session traces, Chrome trace_event
//	               JSON (open in chrome://tracing or Perfetto)
//	/debug/pprof/  the standard Go profiling endpoints
func NewAdminMux(cfg AdminConfig) *http.ServeMux {
	mux := http.NewServeMux()
	logReq := func(r *http.Request) {
		if cfg.Logger != nil {
			cfg.Logger.Debug("admin request", "path", r.URL.Path, "remote", r.RemoteAddr)
		}
	}

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		logReq(r)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})

	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		logReq(r)
		rd := Readiness{Ready: true}
		if cfg.Readiness != nil {
			rd = cfg.Readiness()
		}
		w.Header().Set("Content-Type", "application/json")
		if !rd.Ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(rd)
	})

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		logReq(r)
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, cfg.Metrics.RenderText())
			return
		}
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		payload := metricsPayload{
			MetricsSnapshot: cfg.Metrics.Snapshot(),
			Runtime: runtimeSnapshot{
				Goroutines:   runtime.NumGoroutine(),
				HeapAllocMB:  float64(ms.HeapAlloc) / (1 << 20),
				TotalAllocMB: float64(ms.TotalAlloc) / (1 << 20),
				NumGC:        ms.NumGC,
				GCPauseMS:    float64(ms.PauseTotalNs) / 1e6,
			},
			Tracer: cfg.Tracer.Stats(),
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(payload)
	})

	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		logReq(r)
		n := 16
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			switch {
			case err != nil:
				http.Error(w, fmt.Sprintf("trace: n=%q is not an integer", q), http.StatusBadRequest)
				return
			case v < 0:
				http.Error(w, fmt.Sprintf("trace: n=%d is negative", v), http.StatusBadRequest)
				return
			case v > MaxTraceN:
				http.Error(w, fmt.Sprintf("trace: n=%d exceeds the maximum of %d", v, MaxTraceN), http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/json")
		WriteChromeTrace(w, cfg.Tracer.Completed(n))
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
