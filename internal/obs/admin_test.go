package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(5)
	r.Observe("h", time.Millisecond)
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot = %+v", snap)
	}
	if r.RenderText() != "" {
		t.Fatal("nil registry must render empty")
	}
	if _, err := r.JSON(); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	r.Counter("sessions.total").Add(3)
	r.Counter("sessions.total").Inc()
	r.Gauge("sessions.in_flight").Inc()
	r.Gauge("sessions.in_flight").Inc()
	r.Gauge("sessions.in_flight").Dec()
	r.Observe("wal.sync", 2*time.Millisecond)
	r.Observe("wal.sync", 4*time.Millisecond)

	snap := r.Snapshot()
	if snap.Counters["sessions.total"] != 4 {
		t.Fatalf("counter = %d", snap.Counters["sessions.total"])
	}
	if snap.Gauges["sessions.in_flight"] != 1 {
		t.Fatalf("gauge = %d", snap.Gauges["sessions.in_flight"])
	}
	if h := snap.Histograms["wal.sync"]; h.Count != 2 {
		t.Fatalf("hist = %+v", h)
	}

	text := r.RenderText()
	for _, want := range []string{"counters", "gauges", "histograms", "sessions.total", "wal.sync"} {
		if !strings.Contains(text, want) {
			t.Fatalf("RenderText missing %q:\n%s", want, text)
		}
	}
}

func TestRegistrySameInstrumentReturned(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("Counter must return the same instrument per name")
	}
	if r.Gauge("y") != r.Gauge("y") {
		t.Fatal("Gauge must return the same instrument per name")
	}
	if r.Histogram("z") != r.Histogram("z") {
		t.Fatal("Histogram must return the same instrument per name")
	}
}

// adminFixture builds a populated admin mux.
func adminFixture(ready bool) *http.ServeMux {
	reg := NewRegistry()
	reg.Counter("sessions.total").Add(7)
	reg.Gauge("sessions.in_flight").Set(2)
	reg.Observe("session.latency", 3*time.Millisecond)
	tr := NewTracer(8)
	trace := tr.StartSession(nil)
	trace.SetLabel("submit")
	trace.SpanAt("handle", time.Now(), time.Millisecond)
	trace.Finish()
	return NewAdminMux(AdminConfig{
		Metrics: reg,
		Tracer:  tr,
		Readiness: func() Readiness {
			return Readiness{Ready: ready, Detail: map[string]any{"store": ready}}
		},
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
}

func get(t *testing.T, mux *http.ServeMux, path string) (*httptest.ResponseRecorder, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	body, _ := io.ReadAll(rec.Result().Body)
	return rec, string(body)
}

func TestAdminHealthz(t *testing.T) {
	rec, body := get(t, adminFixture(true), "/healthz")
	if rec.Code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz = %d %q", rec.Code, body)
	}
}

func TestAdminReadyz(t *testing.T) {
	rec, body := get(t, adminFixture(true), "/readyz")
	if rec.Code != 200 || !strings.Contains(body, `"ready": true`) {
		t.Fatalf("readyz = %d %q", rec.Code, body)
	}
	rec, body = get(t, adminFixture(false), "/readyz")
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(body, `"ready": false`) {
		t.Fatalf("not-ready readyz = %d %q", rec.Code, body)
	}
}

func TestAdminMetricsJSON(t *testing.T) {
	rec, body := get(t, adminFixture(true), "/metrics")
	if rec.Code != 200 {
		t.Fatalf("metrics = %d", rec.Code)
	}
	var payload struct {
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]int64 `json:"gauges"`
		Runtime  struct {
			Goroutines int `json:"goroutines"`
		} `json:"runtime"`
		Tracer struct {
			Finished int `json:"Finished"`
		} `json:"tracer"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, body)
	}
	if payload.Counters["sessions.total"] != 7 || payload.Gauges["sessions.in_flight"] != 2 {
		t.Fatalf("metrics payload = %+v", payload)
	}
	if payload.Runtime.Goroutines <= 0 {
		t.Fatal("runtime section missing")
	}
	if payload.Tracer.Finished != 1 {
		t.Fatalf("tracer stats = %+v", payload.Tracer)
	}
}

func TestAdminMetricsText(t *testing.T) {
	rec, body := get(t, adminFixture(true), "/metrics?format=text")
	if rec.Code != 200 || !strings.Contains(body, "sessions.total") {
		t.Fatalf("metrics text = %d %q", rec.Code, body)
	}
	if strings.Contains(body, "{") {
		t.Fatal("text format must not be JSON")
	}
}

func TestAdminTrace(t *testing.T) {
	rec, body := get(t, adminFixture(true), "/trace?n=4")
	if rec.Code != 200 {
		t.Fatalf("trace = %d", rec.Code)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &file); err != nil {
		t.Fatalf("trace not chrome JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("trace export empty")
	}
	if rec, _ := get(t, adminFixture(true), "/trace?n=bogus"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad n = %d", rec.Code)
	}
}

// /trace?n=K validation: non-numeric, negative, and absurdly large K
// are client errors, each with a reason in the body; edge-of-range and
// omitted K still serve a trace document.
func TestAdminTraceValidatesN(t *testing.T) {
	bad := map[string]string{
		"/trace?n=bogus":       "not an integer",
		"/trace?n=1.5":         "not an integer",
		"/trace?n=0x10":        "not an integer",
		"/trace?n=-1":          "negative",
		"/trace?n=-999999":     "negative",
		"/trace?n=65537":       "exceeds the maximum",
		"/trace?n=99999999999": "exceeds the maximum",
	}
	for path, reason := range bad {
		rec, body := get(t, adminFixture(true), path)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400", path, rec.Code)
		}
		if !strings.Contains(body, reason) {
			t.Errorf("%s body %q does not explain %q", path, body, reason)
		}
	}
	for _, path := range []string{"/trace", "/trace?n=0", "/trace?n=65536"} {
		rec, body := get(t, adminFixture(true), path)
		if rec.Code != 200 {
			t.Errorf("%s = %d, want 200", path, rec.Code)
		}
		if !strings.Contains(body, "traceEvents") {
			t.Errorf("%s did not serve a trace document: %q", path, body)
		}
	}
}

func TestAdminPprof(t *testing.T) {
	rec, body := get(t, adminFixture(true), "/debug/pprof/")
	if rec.Code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index = %d", rec.Code)
	}
	if rec, _ := get(t, adminFixture(true), "/debug/pprof/cmdline"); rec.Code != 200 {
		t.Fatalf("pprof cmdline = %d", rec.Code)
	}
}

func TestAdminNilSources(t *testing.T) {
	mux := NewAdminMux(AdminConfig{})
	for _, path := range []string{"/healthz", "/readyz", "/metrics", "/metrics?format=text", "/trace"} {
		if rec, _ := get(t, mux, path); rec.Code != 200 {
			t.Fatalf("%s with nil sources = %d", path, rec.Code)
		}
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"WARN": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("unknown level must error")
	}
}

func TestLoggerSessionAttr(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, slog.LevelInfo)
	log.Info("session accepted", Session(0xab))
	if !strings.Contains(buf.String(), "sid=00000000000000ab") {
		t.Fatalf("log line = %q", buf.String())
	}
	buf.Reset()
	log.Debug("hidden")
	if buf.Len() != 0 {
		t.Fatal("debug must be filtered at info level")
	}
}
