package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"unitp/internal/sim"
)

func TestWrapUnwrapRoundTrip(t *testing.T) {
	payload := []byte{0x02, 0xde, 0xad, 0xbe, 0xef}
	frame := WrapFrame(0x1122334455667788, payload)
	if len(frame) != envelopeLen+len(payload) {
		t.Fatalf("frame length = %d, want %d", len(frame), envelopeLen+len(payload))
	}
	id, inner, ok := UnwrapFrame(frame)
	if !ok || id != 0x1122334455667788 || !bytes.Equal(inner, payload) {
		t.Fatalf("UnwrapFrame = (%x, %x, %v)", id, inner, ok)
	}
	if got, ok := PeekSession(frame); !ok || got != id {
		t.Fatalf("PeekSession = (%x, %v)", got, ok)
	}
}

func TestUnwrapFrameLegacyAndCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0x02},                         // legacy protocol frame, tag < envelopeLen
		{0xF5, 1, 2, 3},                // truncated envelope
		bytes.Repeat([]byte{0x07}, 32), // legacy frame long enough but wrong tag
	}
	for i, frame := range cases {
		id, inner, ok := UnwrapFrame(frame)
		if ok {
			t.Fatalf("case %d: unexpectedly unwrapped id=%x", i, id)
		}
		if !bytes.Equal(inner, frame) {
			t.Fatalf("case %d: frame not returned untouched", i)
		}
	}
}

func TestSessionIDString(t *testing.T) {
	if got := SessionID(0xab).String(); got != "00000000000000ab" {
		t.Fatalf("String() = %q", got)
	}
}

func TestNilTracerAndTraceNoOp(t *testing.T) {
	var tr *Tracer
	tr.SetIDBase(7)
	trace := tr.StartSession(nil)
	if trace != nil {
		t.Fatal("nil tracer must mint nil traces")
	}
	// Every method must be callable on the nil trace.
	trace.SetLabel("x")
	trace.SpanAt("s", time.Time{}, time.Second)
	trace.Event("e", "d")
	trace.StartSpan("open").End()
	trace.Finish()
	if trace.ID() != 0 || trace.Label() != "" || trace.Adopted() {
		t.Fatal("nil trace accessors must return zero values")
	}
	if tr.Adopt(1, nil) != nil || tr.Lookup(1) != nil {
		t.Fatal("nil tracer lookups must return nil")
	}
	tr.Event(1, "e", "d")
	if tr.ActiveCount() != 0 || len(tr.All()) != 0 || len(tr.Completed(0)) != 0 {
		t.Fatal("nil tracer must report empty state")
	}
	if tr.Stats() != (TracerStats{}) {
		t.Fatal("nil tracer stats must be zero")
	}
}

func TestTracerSpanAndEventRecording(t *testing.T) {
	clock := sim.NewVirtualClock()
	tr := NewTracer(8)
	trace := tr.StartSession(clock)
	trace.SetLabel("submit")

	span := trace.StartSpan("handle")
	clock.Sleep(5 * time.Millisecond)
	span.End()
	trace.Event("net.drop", "attempt=1")
	trace.SpanAt("pal.skinit", sim.Epoch, 2*time.Millisecond)
	trace.Finish()

	label, spans, events, dropped := trace.snapshot()
	if label != "submit" || dropped != 0 {
		t.Fatalf("label=%q dropped=%d", label, dropped)
	}
	if len(spans) != 2 || spans[0].Name != "handle" || spans[0].Dur != 5*time.Millisecond {
		t.Fatalf("spans = %+v", spans)
	}
	if len(events) != 1 || events[0].Name != "net.drop" || events[0].Detail != "attempt=1" {
		t.Fatalf("events = %+v", events)
	}
	if got := tr.Stats(); got.Started != 1 || got.Finished != 1 {
		t.Fatalf("stats = %+v", got)
	}
}

func TestTracerAdoptAndFinishIdempotent(t *testing.T) {
	tr := NewTracer(8)
	a := tr.Adopt(42, nil)
	if !a.Adopted() || a.ID() != 42 {
		t.Fatalf("adopted trace = %+v", a)
	}
	if b := tr.Adopt(42, nil); b != a {
		t.Fatal("second Adopt of same id must return the same trace")
	}
	if tr.Lookup(42) != a {
		t.Fatal("Lookup must find the active trace")
	}
	tr.Event(42, "wal.sync", "")
	a.Finish()
	a.Finish() // idempotent
	if got := tr.Stats(); got.Adopted != 1 || got.Finished != 1 {
		t.Fatalf("stats = %+v", got)
	}
	if len(tr.Completed(0)) != 1 {
		t.Fatalf("ring size = %d", len(tr.Completed(0)))
	}
	// Late spans after Finish still land on the shared object.
	a.SpanAt("late", sim.Epoch, time.Millisecond)
	_, spans, events, _ := a.snapshot()
	if len(spans) != 1 || len(events) != 1 {
		t.Fatalf("late records lost: spans=%d events=%d", len(spans), len(events))
	}
}

func TestTracerRingBound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		trace := tr.StartSession(nil)
		trace.SetLabel(fmt.Sprintf("s%d", i))
		trace.Finish()
	}
	got := tr.Completed(0)
	if len(got) != 4 {
		t.Fatalf("ring holds %d, want 4", len(got))
	}
	if got[0].Label() != "s6" || got[3].Label() != "s9" {
		t.Fatalf("ring order wrong: %q .. %q", got[0].Label(), got[3].Label())
	}
	if last := tr.Completed(2); len(last) != 2 || last[1].Label() != "s9" {
		t.Fatalf("Completed(2) = %d entries, last %q", len(last), last[len(last)-1].Label())
	}
}

func TestTracerActiveEviction(t *testing.T) {
	tr := NewTracer(2) // active bound = 8
	var first *SessionTrace
	for i := 0; i < 9; i++ {
		trace := tr.StartSession(nil)
		if i == 0 {
			first = trace
		}
	}
	stats := tr.Stats()
	if stats.Evicted != 1 {
		t.Fatalf("evicted = %d, want 1", stats.Evicted)
	}
	if tr.Lookup(first.ID()) != nil {
		t.Fatal("oldest session must be evicted from active set")
	}
	if tr.ActiveCount() != 8 {
		t.Fatalf("active = %d, want 8", tr.ActiveCount())
	}
}

func TestTracerIDBaseAndUniqueness(t *testing.T) {
	tr := NewTracer(8)
	tr.SetIDBase(0xDEADBEEF00000000)
	a := tr.StartSession(nil)
	b := tr.StartSession(nil)
	if a.ID() == b.ID() {
		t.Fatal("minted IDs must differ")
	}
	if a.ID() != SessionID(0xDEADBEEF00000000^1) {
		t.Fatalf("id = %s, want base^1", a.ID())
	}
}

func TestPerTraceBound(t *testing.T) {
	tr := NewTracer(4)
	trace := tr.StartSession(nil)
	for i := 0; i < maxPerTrace+10; i++ {
		trace.SpanAt("s", sim.Epoch, time.Millisecond)
	}
	_, spans, _, dropped := trace.snapshot()
	if len(spans) != maxPerTrace || dropped != 10 {
		t.Fatalf("spans=%d dropped=%d", len(spans), dropped)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				trace := tr.StartSession(nil)
				sp := trace.StartSpan("work")
				trace.Event("tick", "")
				sp.End()
				trace.Finish()
			}
		}()
	}
	wg.Wait()
	if got := tr.Stats(); got.Started != 400 || got.Finished != 400 {
		t.Fatalf("stats = %+v", got)
	}
}

func TestWriteJSONL(t *testing.T) {
	clock := sim.NewVirtualClock()
	tr := NewTracer(8)
	trace := tr.StartSession(clock)
	trace.SetLabel("submit")
	sp := trace.StartSpan("handle")
	clock.Sleep(3 * time.Millisecond)
	sp.End()
	trace.Event("net.drop", "attempt=2")
	trace.Finish()

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr.All()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["type"] != "span" || rec["name"] != "handle" || rec["dur_us"] != 3000.0 {
		t.Fatalf("span line = %v", rec)
	}
	if rec["sid"] != trace.ID().String() {
		t.Fatalf("sid = %v", rec["sid"])
	}
}

func TestWriteChromeTrace(t *testing.T) {
	clock := sim.NewVirtualClock()
	tr := NewTracer(8)
	trace := tr.StartSession(clock)
	trace.SetLabel("submit")
	sp := trace.StartSpan("handle")
	clock.Sleep(2 * time.Millisecond)
	sp.End()
	trace.Event("retry", "n=1")
	trace.Finish()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.All()); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("not valid trace_event JSON: %v", err)
	}
	if file.Unit != "ms" {
		t.Fatalf("displayTimeUnit = %q", file.Unit)
	}
	var phases []string
	for _, ev := range file.TraceEvents {
		phases = append(phases, ev["ph"].(string))
	}
	// process_name meta, thread_name meta, one X span, one i event.
	want := []string{"M", "M", "X", "i"}
	if len(phases) != len(want) {
		t.Fatalf("phases = %v", phases)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("phases = %v, want %v", phases, want)
		}
	}
	if !strings.Contains(buf.String(), trace.ID().String()) {
		t.Fatal("export must mention the correlation ID")
	}
	if !strings.Contains(buf.String(), "submit") {
		t.Fatal("export must carry the session label")
	}
}

func TestExportDeterministicWithVirtualClock(t *testing.T) {
	run := func() string {
		clock := sim.NewVirtualClock()
		tr := NewTracer(8)
		tr.SetIDBase(99)
		for i := 0; i < 3; i++ {
			trace := tr.StartSession(clock)
			sp := trace.StartSpan("phase")
			clock.Sleep(time.Duration(i+1) * time.Millisecond)
			sp.End()
			trace.Finish()
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, tr.All()); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if run() != run() {
		t.Fatal("seeded trace export must be bit-identical across runs")
	}
}
