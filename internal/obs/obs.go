// Package obs is the runtime observability layer of the trusted-path
// stack: span-based session tracing with client-minted correlation IDs
// propagated in frame headers, a live metrics registry of counters,
// gauges, and bounded histograms, and the HTTP admin plane (metrics,
// health, pprof, trace download) that cmd/tpserver exposes with -admin.
//
// Everything here is optional at every call site: a nil *Tracer mints
// nil *SessionTrace values whose span and event methods no-op, and a
// nil *Registry hands out shared discard instruments — so the protocol
// stack is instrumented unconditionally while paying near-zero cost
// when observability is off (experiment F11 measures the residue).
//
// Determinism: tracing never consumes simulation randomness and never
// advances any clock; a seeded experiment produces bit-identical
// results with tracing on or off.
package obs

import (
	"encoding/binary"
	"fmt"
)

// SessionID is the correlation ID of one trusted-path session, minted
// at the client and carried in every frame the session sends, so every
// layer — transport, provider, WAL — attributes its spans and events
// to the same trace.
type SessionID uint64

// String renders the ID the way logs and trace exports show it.
func (id SessionID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// frameTag marks a correlation-ID envelope on the wire. Protocol
// message type tags are small positive integers and the transport error
// frame tag is 0x00, so the three namespaces cannot collide.
const frameTag = 0xF5

// envelopeLen is the number of bytes WrapFrame prepends.
const envelopeLen = 1 + 8

// WrapFrame prepends a correlation-ID header to a protocol frame.
func WrapFrame(id SessionID, payload []byte) []byte {
	out := make([]byte, envelopeLen+len(payload))
	out[0] = frameTag
	binary.BigEndian.PutUint64(out[1:envelopeLen], uint64(id))
	copy(out[envelopeLen:], payload)
	return out
}

// UnwrapFrame splits a frame into its correlation ID and inner payload.
// Frames without an envelope (legacy clients, raw attack frames) are
// returned untouched with ok=false.
func UnwrapFrame(frame []byte) (SessionID, []byte, bool) {
	if len(frame) < envelopeLen || frame[0] != frameTag {
		return 0, frame, false
	}
	return SessionID(binary.BigEndian.Uint64(frame[1:envelopeLen])), frame[envelopeLen:], true
}

// PeekSession reads the correlation ID without stripping the envelope —
// the transport uses it to attribute fault events to sessions while
// forwarding the frame unmodified.
func PeekSession(frame []byte) (SessionID, bool) {
	id, _, ok := UnwrapFrame(frame)
	return id, ok
}
