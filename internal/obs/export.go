package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Trace exports. Two formats:
//
//   - JSONL: one JSON object per span/event line, trivially greppable
//     and diffable — the archival format next to experiment tables.
//   - Chrome trace_event JSON: loadable in chrome://tracing and
//     Perfetto (ui.perfetto.dev) — each session renders as one named
//     track with its phase spans and instant fault/retry annotations.

// jsonlRecord is one exported line.
type jsonlRecord struct {
	SID     string  `json:"sid"`
	Label   string  `json:"label,omitempty"`
	Type    string  `json:"type"` // "span" or "event"
	Name    string  `json:"name"`
	Detail  string  `json:"detail,omitempty"`
	StartUS float64 `json:"start_us"`
	DurUS   float64 `json:"dur_us,omitempty"`
}

// us converts a trace-relative time to fractional microseconds.
func us(t time.Time, epoch time.Time) float64 {
	return float64(t.Sub(epoch).Nanoseconds()) / 1e3
}

// exportEpoch finds the earliest timestamp across the traces, so
// exported times start near zero regardless of wall vs. virtual clocks.
func exportEpoch(traces []*SessionTrace) time.Time {
	var epoch time.Time
	first := true
	note := func(ts time.Time) {
		if first || ts.Before(epoch) {
			epoch, first = ts, false
		}
	}
	for _, t := range traces {
		_, spans, events, _ := t.snapshot()
		for _, s := range spans {
			note(s.Start)
		}
		for _, e := range events {
			note(e.At)
		}
	}
	return epoch
}

// WriteJSONL writes one line per span and event across the traces.
func WriteJSONL(w io.Writer, traces []*SessionTrace) error {
	epoch := exportEpoch(traces)
	enc := json.NewEncoder(w)
	for _, t := range traces {
		label, spans, events, _ := t.snapshot()
		sid := t.ID().String()
		for _, s := range spans {
			if err := enc.Encode(jsonlRecord{
				SID: sid, Label: label, Type: "span", Name: s.Name,
				StartUS: us(s.Start, epoch), DurUS: float64(s.Dur.Nanoseconds()) / 1e3,
			}); err != nil {
				return err
			}
		}
		for _, e := range events {
			if err := enc.Encode(jsonlRecord{
				SID: sid, Label: label, Type: "event", Name: e.Name,
				Detail: e.Detail, StartUS: us(e.At, epoch),
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// chromeEvent is one entry of the trace_event "traceEvents" array.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeFile is the top-level trace_event JSON object.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the traces in Chrome trace_event format.
// Sessions map to "threads" of one synthetic process, so Perfetto
// shows one labelled track per correlation ID.
func WriteChromeTrace(w io.Writer, traces []*SessionTrace) error {
	epoch := exportEpoch(traces)
	file := chromeFile{DisplayTimeUnit: "ms"}
	file.TraceEvents = append(file.TraceEvents, chromeEvent{
		Name: "process_name", Phase: "M", PID: 1,
		Args: map[string]any{"name": "unitp trusted path"},
	})
	for i, t := range traces {
		label, spans, events, dropped := t.snapshot()
		tid := i + 1
		sid := t.ID().String()
		track := "session " + sid
		if label != "" {
			track = fmt.Sprintf("session %s (%s)", sid, label)
		}
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: "thread_name", Phase: "M", PID: 1, TID: tid,
			Args: map[string]any{"name": track},
		})
		for _, s := range spans {
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name: s.Name, Phase: "X", PID: 1, TID: tid,
				TS: us(s.Start, epoch), Dur: float64(s.Dur.Nanoseconds()) / 1e3,
				Args: map[string]any{"sid": sid},
			})
		}
		for _, e := range events {
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name: e.Name, Phase: "i", Scope: "t", PID: 1, TID: tid,
				TS:   us(e.At, epoch),
				Args: map[string]any{"sid": sid, "detail": e.Detail},
			})
		}
		if dropped > 0 {
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name: "records dropped (per-trace bound)", Phase: "i", Scope: "t",
				PID: 1, TID: tid, TS: 0,
				Args: map[string]any{"sid": sid, "dropped": dropped},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}
