package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the stack's structured logger: leveled text output
// with a stable key order, suitable for both terminals and log
// shippers.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// ParseLevel maps a -log-level flag value to a slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (debug, info, warn, error)", s)
	}
}

// Session is the canonical structured-log attribute for a correlation
// ID, so grep by sid works across logs and trace exports.
func Session(id SessionID) slog.Attr { return slog.String("sid", id.String()) }
