package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"unitp/internal/metrics"
)

// Shared discard instruments handed out by a nil *Registry, so
// instrumented code records unconditionally and pays one atomic (or one
// short critical section) when observability is off.
var (
	discardCounter metrics.Counter
	discardGauge   metrics.Gauge
	discardHist    metrics.BoundedHistogram
)

// Registry is a named collection of live instruments: monotonic
// counters, gauges, and bounded latency histograms. Instruments are
// created on first use; iteration order is first-use order so rendered
// tables stay stable. Safe for concurrent use; all methods also accept
// a nil receiver (returning shared discard instruments or zero values).
type Registry struct {
	mu           sync.Mutex
	counters     map[string]*metrics.Counter
	counterNames []string
	gauges       map[string]*metrics.Gauge
	gaugeNames   []string
	hists        map[string]*metrics.BoundedHistogram
	histNames    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*metrics.Counter),
		gauges:   make(map[string]*metrics.Gauge),
		hists:    make(map[string]*metrics.BoundedHistogram),
	}
}

// Counter returns the named counter, creating it at zero on first use.
func (r *Registry) Counter(name string) *metrics.Counter {
	if r == nil {
		return &discardCounter
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &metrics.Counter{}
		r.counters[name] = c
		r.counterNames = append(r.counterNames, name)
	}
	return c
}

// Gauge returns the named gauge, creating it at zero on first use.
func (r *Registry) Gauge(name string) *metrics.Gauge {
	if r == nil {
		return &discardGauge
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &metrics.Gauge{}
		r.gauges[name] = g
		r.gaugeNames = append(r.gaugeNames, name)
	}
	return g
}

// Histogram returns the named bounded histogram, creating it on first
// use. Bounded by construction: long-running processes can record into
// it forever (see metrics.BoundedHistogram).
func (r *Registry) Histogram(name string) *metrics.BoundedHistogram {
	if r == nil {
		return &discardHist
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &metrics.BoundedHistogram{}
		r.hists[name] = h
		r.histNames = append(r.histNames, name)
	}
	return h
}

// Observe records one latency sample — shorthand for
// Histogram(name).Record(d).
func (r *Registry) Observe(name string, d time.Duration) {
	r.Histogram(name).Record(d)
}

// MetricsSnapshot is a point-in-time copy of every instrument, the
// expvar-style JSON the admin plane serves.
type MetricsSnapshot struct {
	Counters   map[string]int64                     `json:"counters"`
	Gauges     map[string]int64                     `json:"gauges"`
	Histograms map[string]metrics.HistogramSnapshot `json:"histograms"`
}

// Snapshot copies every instrument's current value.
func (r *Registry) Snapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]metrics.HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counterNames := append([]string(nil), r.counterNames...)
	gaugeNames := append([]string(nil), r.gaugeNames...)
	histNames := append([]string(nil), r.histNames...)
	counters := make([]*metrics.Counter, len(counterNames))
	gauges := make([]*metrics.Gauge, len(gaugeNames))
	hists := make([]*metrics.BoundedHistogram, len(histNames))
	for i, n := range counterNames {
		counters[i] = r.counters[n]
	}
	for i, n := range gaugeNames {
		gauges[i] = r.gauges[n]
	}
	for i, n := range histNames {
		hists[i] = r.hists[n]
	}
	r.mu.Unlock()
	for i, n := range counterNames {
		snap.Counters[n] = counters[i].Value()
	}
	for i, n := range gaugeNames {
		snap.Gauges[n] = gauges[i].Value()
	}
	for i, n := range histNames {
		snap.Histograms[n] = hists[i].Snapshot()
	}
	return snap
}

// JSON renders the snapshot as indented JSON (stable key order).
func (r *Registry) JSON() ([]byte, error) {
	return json.MarshalIndent(r.Snapshot(), "", "  ")
}

// RenderText renders the registry as aligned plain-text tables, in
// first-use order.
func (r *Registry) RenderText() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	counterNames := append([]string(nil), r.counterNames...)
	gaugeNames := append([]string(nil), r.gaugeNames...)
	histNames := append([]string(nil), r.histNames...)
	r.mu.Unlock()

	out := ""
	if len(counterNames) > 0 {
		t := metrics.NewTable("counters", "name", "value")
		for _, n := range counterNames {
			t.AddRow(n, fmt.Sprintf("%d", r.Counter(n).Value()))
		}
		out += t.Render()
	}
	if len(gaugeNames) > 0 {
		t := metrics.NewTable("gauges", "name", "value")
		for _, n := range gaugeNames {
			t.AddRow(n, fmt.Sprintf("%d", r.Gauge(n).Value()))
		}
		if out != "" {
			out += "\n"
		}
		out += t.Render()
	}
	if len(histNames) > 0 {
		t := metrics.NewTable("histograms", "name", "count", "summary")
		for _, n := range histNames {
			h := r.Histogram(n)
			t.AddRow(n, fmt.Sprintf("%d", h.Count()), h.Summary())
		}
		if out != "" {
			out += "\n"
		}
		out += t.Render()
	}
	return out
}
