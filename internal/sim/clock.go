// Package sim provides the simulation substrate shared by every hardware
// model in this repository: a virtual clock for deterministic latency
// accounting and a deterministic random source for reproducible runs.
//
// The reproduction target (DSN 2011 uni-directional trusted path) reports
// times dominated by TPM command latencies and DRTM late-launch costs —
// millisecond-to-second scale hardware operations that a Go process cannot
// perform natively. Rather than sleeping on the wall clock, hardware models
// charge their modelled cost to a Clock. A VirtualClock advances instantly,
// making experiments deterministic and fast while preserving every reported
// duration; a WallClock can be swapped in for interactive demos.
package sim

import (
	"fmt"
	"sync"
	"time"
)

// Clock abstracts the passage of time for simulated hardware.
//
// Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current simulated (or real) time.
	Now() time.Time

	// Sleep advances time by d. On a VirtualClock this is instantaneous;
	// on a WallClock it blocks.
	Sleep(d time.Duration)
}

// Epoch is the instant at which every VirtualClock starts. A fixed epoch
// keeps logs and golden outputs reproducible across runs.
var Epoch = time.Date(2011, time.June, 27, 9, 0, 0, 0, time.UTC)

// VirtualClock is a manually advanced clock. Sleeps complete immediately but
// move the clock forward, so accumulated durations reflect the modelled
// hardware cost exactly.
//
// The zero value is not ready for use; construct with NewVirtualClock.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time

	slept time.Duration
}

var _ Clock = (*VirtualClock)(nil)

// NewVirtualClock returns a VirtualClock starting at Epoch.
func NewVirtualClock() *VirtualClock {
	return &VirtualClock{now: Epoch}
}

// NewVirtualClockAt returns a VirtualClock starting at the given instant.
func NewVirtualClockAt(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances the virtual clock by d without blocking. Negative
// durations are ignored so that callers may pass raw subtraction results.
func (c *VirtualClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	c.slept += d
}

// Advance is a synonym for Sleep, for callers that read better with
// scheduler vocabulary.
func (c *VirtualClock) Advance(d time.Duration) { c.Sleep(d) }

// Elapsed reports how much virtual time has passed since the clock was
// created (i.e. the sum of all Sleep calls).
func (c *VirtualClock) Elapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.slept
}

// WallClock delegates to the real time package. Use it for interactive
// demos where the modelled latencies should actually be felt.
type WallClock struct{}

var _ Clock = WallClock{}

// Now returns time.Now().
func (WallClock) Now() time.Time { return time.Now() }

// Sleep blocks for d via time.Sleep.
func (WallClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	time.Sleep(d)
}

// Stopwatch measures elapsed time on an arbitrary Clock.
type Stopwatch struct {
	clock Clock
	start time.Time
}

// NewStopwatch starts a stopwatch on the given clock.
func NewStopwatch(clock Clock) *Stopwatch {
	return &Stopwatch{clock: clock, start: clock.Now()}
}

// Elapsed returns the time since the stopwatch started.
func (s *Stopwatch) Elapsed() time.Duration {
	return s.clock.Now().Sub(s.start)
}

// Restart resets the stopwatch to the current instant and returns the
// duration that had elapsed before the reset.
func (s *Stopwatch) Restart() time.Duration {
	now := s.clock.Now()
	d := now.Sub(s.start)
	s.start = now
	return d
}

// Lap returns the elapsed time formatted for experiment tables.
func (s *Stopwatch) Lap() string {
	return FormatDuration(s.Elapsed())
}

// FormatDuration renders a duration with millisecond precision, the
// granularity used throughout the experiment tables.
func FormatDuration(d time.Duration) string {
	return fmt.Sprintf("%.3f ms", float64(d.Microseconds())/1000.0)
}
