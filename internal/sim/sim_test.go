package sim

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestVirtualClockStartsAtEpoch(t *testing.T) {
	c := NewVirtualClock()
	if got := c.Now(); !got.Equal(Epoch) {
		t.Fatalf("Now() = %v, want %v", got, Epoch)
	}
}

func TestVirtualClockSleepAdvances(t *testing.T) {
	c := NewVirtualClock()
	c.Sleep(250 * time.Millisecond)
	c.Sleep(750 * time.Millisecond)
	if got, want := c.Now(), Epoch.Add(time.Second); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
	if got := c.Elapsed(); got != time.Second {
		t.Fatalf("Elapsed() = %v, want 1s", got)
	}
}

func TestVirtualClockIgnoresNegativeSleep(t *testing.T) {
	c := NewVirtualClock()
	c.Sleep(-time.Hour)
	if got := c.Now(); !got.Equal(Epoch) {
		t.Fatalf("negative sleep moved the clock: %v", got)
	}
}

func TestVirtualClockAt(t *testing.T) {
	start := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	c := NewVirtualClockAt(start)
	if got := c.Now(); !got.Equal(start) {
		t.Fatalf("Now() = %v, want %v", got, start)
	}
}

func TestVirtualClockConcurrentSleeps(t *testing.T) {
	c := NewVirtualClock()
	const workers, sleeps = 8, 100
	done := make(chan struct{})
	for i := 0; i < workers; i++ {
		go func() {
			for j := 0; j < sleeps; j++ {
				c.Sleep(time.Millisecond)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	if got, want := c.Elapsed(), workers*sleeps*time.Millisecond; got != want {
		t.Fatalf("Elapsed() = %v, want %v", got, want)
	}
}

func TestStopwatch(t *testing.T) {
	c := NewVirtualClock()
	sw := NewStopwatch(c)
	c.Sleep(42 * time.Millisecond)
	if got := sw.Elapsed(); got != 42*time.Millisecond {
		t.Fatalf("Elapsed() = %v, want 42ms", got)
	}
	if got := sw.Restart(); got != 42*time.Millisecond {
		t.Fatalf("Restart() = %v, want 42ms", got)
	}
	c.Sleep(8 * time.Millisecond)
	if got := sw.Elapsed(); got != 8*time.Millisecond {
		t.Fatalf("Elapsed() after restart = %v, want 8ms", got)
	}
}

func TestWallClockSleepNonNegative(t *testing.T) {
	var c WallClock
	start := time.Now()
	c.Sleep(-time.Hour) // must not block
	if time.Since(start) > time.Second {
		t.Fatal("negative wall sleep blocked")
	}
	if c.Now().IsZero() {
		t.Fatal("WallClock.Now returned zero time")
	}
}

func TestFormatDuration(t *testing.T) {
	if got, want := FormatDuration(1500*time.Microsecond), "1.500 ms"; got != want {
		t.Fatalf("FormatDuration = %q, want %q", got, want)
	}
}

func TestRandDeterminism(t *testing.T) {
	a := NewRand(7)
	b := NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a := NewRand(1)
	b := NewRand(2)
	same := 0
	for i := 0; i < 32; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical 64-bit values", same)
	}
}

func TestRandForkIndependence(t *testing.T) {
	root := NewRand(9)
	a := root.Fork("tpm")
	b := root.Fork("network")
	if a.Uint64() == b.Uint64() {
		t.Fatal("forked streams produced identical first value")
	}
	// Forking again with the same label from an untouched root must
	// reproduce the same child stream.
	root2 := NewRand(9)
	a2 := root2.Fork("tpm")
	for i := 0; i < 16; i++ {
		// a has already consumed one value.
		_ = a2
		break
	}
	c1 := NewRand(9).Fork("tpm")
	c2 := NewRand(9).Fork("tpm")
	for i := 0; i < 16; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("same-label forks diverged at %d", i)
		}
	}
}

func TestRandRead(t *testing.T) {
	r := NewRand(3)
	buf1 := make([]byte, 100)
	if n, err := r.Read(buf1); err != nil || n != 100 {
		t.Fatalf("Read = (%d, %v), want (100, nil)", n, err)
	}
	buf2 := NewRand(3).Bytes(100)
	if !bytes.Equal(buf1, buf2) {
		t.Fatal("Read and Bytes disagree for same seed")
	}
	if bytes.Equal(buf1[:50], buf1[50:]) {
		t.Fatal("output repeats within 100 bytes")
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(11)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) covered %d values in 1000 draws, want 10", len(seen))
	}
}

func TestRandIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(13)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestRandBoolEdges(t *testing.T) {
	r := NewRand(17)
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
	trues := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			trues++
		}
	}
	frac := float64(trues) / n
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("Bool(0.3) frequency = %v, want ~0.3", frac)
	}
}

func TestRandDuration(t *testing.T) {
	r := NewRand(19)
	min, max := 10*time.Millisecond, 20*time.Millisecond
	for i := 0; i < 200; i++ {
		d := r.Duration(min, max)
		if d < min || d > max {
			t.Fatalf("Duration = %v outside [%v, %v]", d, min, max)
		}
	}
	if got := r.Duration(max, min); got != max {
		t.Fatalf("inverted range should return min arg; got %v", got)
	}
}

func TestRandNormalMoments(t *testing.T) {
	r := NewRand(23)
	const n = 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal(100, 15)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-100) > 1 {
		t.Fatalf("sample mean = %v, want ~100", mean)
	}
	if sd := math.Sqrt(variance); math.Abs(sd-15) > 1 {
		t.Fatalf("sample stddev = %v, want ~15", sd)
	}
}

func TestRandNormalDurationNonNegative(t *testing.T) {
	r := NewRand(29)
	for i := 0; i < 1000; i++ {
		if d := r.NormalDuration(time.Millisecond, 10*time.Millisecond); d < 0 {
			t.Fatalf("NormalDuration returned negative %v", d)
		}
	}
}

func TestRandExponentialMean(t *testing.T) {
	r := NewRand(31)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential(50)
	}
	if mean := sum / n; math.Abs(mean-50) > 2.5 {
		t.Fatalf("sample mean = %v, want ~50", mean)
	}
}

func TestRandShufflePermutes(t *testing.T) {
	r := NewRand(37)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool, len(xs))
	for _, v := range xs {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestRandUniformityProperty(t *testing.T) {
	// Property: for any modulus in [2, 64], Intn covers all residues over
	// enough draws (quick check over random moduli).
	f := func(seed uint64, modRaw uint8) bool {
		mod := int(modRaw%63) + 2
		r := NewRand(seed)
		seen := make(map[int]bool)
		for i := 0; i < mod*200; i++ {
			seen[r.Intn(mod)] = true
		}
		return len(seen) == mod
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
