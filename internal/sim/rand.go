package sim

import (
	"crypto/sha256"
	"encoding/binary"
	"io"
	"math"
	"sync"
	"time"
)

// Rand is a deterministic random source used by every stochastic model in
// the simulation (latency jitter, user error rates, attacker strategies).
// It also implements io.Reader so it can seed deterministic key generation
// in tests.
//
// The generator is a SHA-256-based counter DRBG: slow compared to PCG but
// more than fast enough for simulation control flow, and it guarantees the
// same stream on every platform and Go version (unlike math/rand's
// generator, whose top-level functions are auto-seeded since Go 1.20).
type Rand struct {
	mu      sync.Mutex
	key     [32]byte
	counter uint64
	buf     [32]byte
	avail   int
}

var _ io.Reader = (*Rand)(nil)

// NewRand returns a deterministic source derived from seed.
func NewRand(seed uint64) *Rand {
	var seedBytes [8]byte
	binary.BigEndian.PutUint64(seedBytes[:], seed)
	r := &Rand{}
	r.key = sha256.Sum256(seedBytes[:])
	return r
}

// Fork derives an independent stream labelled by name. Subsystems fork the
// root source so that adding randomness consumption to one subsystem does
// not perturb another's stream.
func (r *Rand) Fork(name string) *Rand {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := sha256.New()
	h.Write(r.key[:])
	h.Write([]byte("/fork/"))
	h.Write([]byte(name))
	child := &Rand{}
	h.Sum(child.key[:0])
	return child
}

// refill must be called with r.mu held.
func (r *Rand) refill() {
	var ctr [8]byte
	binary.BigEndian.PutUint64(ctr[:], r.counter)
	r.counter++
	h := sha256.New()
	h.Write(r.key[:])
	h.Write(ctr[:])
	h.Sum(r.buf[:0])
	r.avail = len(r.buf)
}

// Read fills p with deterministic pseudo-random bytes. It never fails.
func (r *Rand) Read(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(p)
	for len(p) > 0 {
		if r.avail == 0 {
			r.refill()
		}
		c := copy(p, r.buf[len(r.buf)-r.avail:])
		r.avail -= c
		p = p[c:]
	}
	return n, nil
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	var b [8]byte
	_, _ = r.Read(b[:])
	return binary.BigEndian.Uint64(b[:])
}

// Intn returns a uniform value in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	// Rejection sampling to avoid modulo bias.
	limit := math.MaxUint64 - math.MaxUint64%uint64(n)
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % uint64(n))
		}
	}
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p (clamped to [0, 1]).
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Duration returns a uniform duration in [min, max]. If max <= min it
// returns min.
func (r *Rand) Duration(min, max time.Duration) time.Duration {
	if max <= min {
		return min
	}
	span := uint64(max - min)
	return min + time.Duration(r.Uint64()%(span+1))
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, using the Box–Muller transform.
func (r *Rand) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	u2 := r.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// NormalDuration returns a normally distributed duration, truncated below
// at zero. Human reaction times and network jitter use this.
func (r *Rand) NormalDuration(mean, stddev time.Duration) time.Duration {
	v := r.Normal(float64(mean), float64(stddev))
	if v < 0 {
		return 0
	}
	return time.Duration(v)
}

// Exponential returns an exponentially distributed value with the given
// mean (inter-arrival times of transaction workloads).
func (r *Rand) Exponential(mean float64) float64 {
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bytes returns a fresh deterministic byte slice of length n.
func (r *Rand) Bytes(n int) []byte {
	b := make([]byte, n)
	_, _ = r.Read(b)
	return b
}
