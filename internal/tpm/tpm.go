// Package tpm implements a software TPM v1.2 with the fidelity the
// uni-directional trusted path protocol depends on: 24 PCRs with
// locality-gated extend/reset policies (including the dynamically
// resettable DRTM registers), RSA quote generation over PCR composites,
// sealed storage bound to PCR state, non-volatile storage, and monotonic
// counters.
//
// Hardware substitution (see DESIGN.md): command latencies of discrete
// TPM chips are modelled by vendor Profiles and charged to a sim.Clock;
// all cryptography (extend chains, quote signatures, sealed-blob
// authenticated encryption) is real.
package tpm

import (
	"crypto"
	"crypto/rand"
	"crypto/rsa"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"unitp/internal/cryptoutil"
	"unitp/internal/sim"
)

// Locality is the TPM locality at which a command arrives. Locality 4 is
// asserted only by the CPU during DRTM late launch; locality 2 belongs to
// the late-launched environment; locality 0 to the legacy OS.
type Locality uint8

// MaxLocality is the highest defined locality.
const MaxLocality Locality = 4

// LocalityMask is a bit set of localities (bit i set ⇒ locality i allowed).
type LocalityMask uint8

// MaskOf builds a LocalityMask from the given localities.
func MaskOf(locs ...Locality) LocalityMask {
	var m LocalityMask
	for _, l := range locs {
		m |= 1 << l
	}
	return m
}

// AllLocalities permits every locality.
const AllLocalities LocalityMask = 0x1F

// Contains reports whether the mask includes loc.
func (m LocalityMask) Contains(loc Locality) bool {
	return loc <= MaxLocality && m&(1<<loc) != 0
}

// Handle identifies a loaded key inside the TPM.
type Handle uint32

// KeySource supplies RSA private keys for EK/AIK creation. Real TPMs
// generate keys internally (tens of seconds on era chips, modelled by
// OpCreateKey latency); the source abstraction lets simulations draw from
// the deterministic process-wide pool instead of paying real generation
// cost for every simulated platform.
type KeySource interface {
	// Next returns a fresh RSA private key.
	Next() (*rsa.PrivateKey, error)
}

// pooledKeySource hands out keys from the deterministic process-wide pool.
type pooledKeySource struct{ next *atomic.Int64 }

// poolCursor is shared across all pooled sources so two TPMs in one
// process never receive the same key.
var poolCursor atomic.Int64

// PooledKeySource returns a KeySource drawing from the deterministic
// process-wide key pool. Distinct calls to Next never return the same key
// within a process.
func PooledKeySource() KeySource {
	return pooledKeySource{next: &poolCursor}
}

func (s pooledKeySource) Next() (*rsa.PrivateKey, error) {
	idx := s.next.Add(1) - 1
	return cryptoutil.PooledKey(int(idx))
}

// freshKeySource generates real keys from a randomness source.
type freshKeySource struct {
	random io.Reader
	bits   int
}

// FreshKeySource returns a KeySource that generates new RSA keys of the
// given size from random.
func FreshKeySource(random io.Reader, bits int) KeySource {
	return freshKeySource{random: random, bits: bits}
}

func (s freshKeySource) Next() (*rsa.PrivateKey, error) {
	return cryptoutil.GenerateRSAKey(s.random, s.bits)
}

// Config configures a TPM device. Zero-value fields receive defaults:
// an Ideal profile, a fresh virtual clock, crypto/rand entropy, and the
// pooled key source.
type Config struct {
	// Profile selects the vendor latency model.
	Profile Profile

	// Clock receives the modelled command latencies.
	Clock sim.Clock

	// Random supplies entropy for GetRandom, seal nonces, and quote
	// signatures.
	Random io.Reader

	// Keys supplies EK and AIK private keys.
	Keys KeySource
}

// TPM is a software TPM v1.2 device. All methods are safe for concurrent
// use; the device serializes commands like the single-threaded hardware
// it models.
type TPM struct {
	mu      sync.Mutex
	profile Profile
	clock   sim.Clock
	random  io.Reader
	keys    KeySource

	started bool
	pcrs    [NumPCRs]cryptoutil.Digest

	ek         *rsa.PrivateKey
	nextHandle Handle
	aiks       map[Handle]*rsa.PrivateKey

	srk [32]byte // storage root key for sealed blobs

	nv       map[uint32][]byte
	counters map[uint32]uint64

	stats map[Op]OpStat
}

// New constructs a TPM, generating its endorsement key. The device is not
// usable until Startup is called (mirroring TPM_Startup after platform
// reset).
func New(cfg Config) (*TPM, error) {
	if cfg.Profile.Name == "" {
		cfg.Profile = ProfileIdeal()
	}
	if cfg.Clock == nil {
		cfg.Clock = sim.NewVirtualClock()
	}
	if cfg.Random == nil {
		cfg.Random = rand.Reader
	}
	if cfg.Keys == nil {
		cfg.Keys = PooledKeySource()
	}
	t := &TPM{
		profile:    cfg.Profile,
		clock:      cfg.Clock,
		random:     cfg.Random,
		keys:       cfg.Keys,
		nextHandle: 0x8000_0001,
		aiks:       make(map[Handle]*rsa.PrivateKey),
		nv:         make(map[uint32][]byte),
		counters:   make(map[uint32]uint64),
		stats:      make(map[Op]OpStat),
	}
	ek, err := t.keys.Next()
	if err != nil {
		return nil, fmt.Errorf("tpm: create EK: %w", err)
	}
	t.ek = ek
	if _, err := io.ReadFull(t.random, t.srk[:]); err != nil {
		return nil, fmt.Errorf("tpm: derive SRK: %w", err)
	}
	return t, nil
}

// charge records the modelled latency of op on the clock and in the
// statistics. Must be called with t.mu held.
func (t *TPM) charge(op Op) {
	d := t.profile.LatencyOf(op)
	t.clock.Sleep(d)
	s := t.stats[op]
	s.Count++
	s.Total += d
	t.stats[op] = s
}

// Profile returns the vendor latency profile of the device.
func (t *TPM) Profile() Profile { return t.profile }

// Startup performs TPM_Startup(ST_CLEAR): static PCRs become zero and
// dynamically resettable PCRs take their power-on default (all 0xFF for
// the DRTM registers), guaranteeing that a zero-prefix extend chain in
// PCR 17 can only originate from a genuine late launch.
func (t *TPM) Startup() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.charge(OpStartup)
	for i := 0; i < NumPCRs; i++ {
		t.pcrs[i] = pcrPolicies[i].startupValue
	}
	t.started = true
	return nil
}

// Started reports whether TPM_Startup has completed.
func (t *TPM) Started() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.started
}

// EK returns the public endorsement key of the device.
func (t *TPM) EK() *rsa.PublicKey {
	return &t.ek.PublicKey
}

// CreateAIK generates an attestation identity key inside the TPM and
// returns its handle and public part. Certification of the AIK against the
// EK is the job of the attestation layer (privacy CA).
func (t *TPM) CreateAIK() (Handle, *rsa.PublicKey, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.started {
		return 0, nil, ErrNotStarted
	}
	t.charge(OpCreateKey)
	key, err := t.keys.Next()
	if err != nil {
		return 0, nil, fmt.Errorf("tpm: create AIK: %w", err)
	}
	h := t.nextHandle
	t.nextHandle++
	t.aiks[h] = key
	return h, &key.PublicKey, nil
}

// GetRandom returns n bytes from the TPM's random number generator.
func (t *TPM) GetRandom(n int) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.started {
		return nil, ErrNotStarted
	}
	t.charge(OpGetRandom)
	buf := make([]byte, n)
	if _, err := io.ReadFull(t.random, buf); err != nil {
		return nil, fmt.Errorf("tpm: entropy source: %w", err)
	}
	return buf, nil
}

// signSHA1 signs digest material with the given private key. Must be
// called with t.mu held.
func (t *TPM) signSHA1(key *rsa.PrivateKey, material []byte) ([]byte, error) {
	digest := cryptoutil.SHA1(material)
	sig, err := rsa.SignPKCS1v15(t.random, key, crypto.SHA1, digest[:])
	if err != nil {
		return nil, fmt.Errorf("tpm: sign: %w", err)
	}
	return sig, nil
}

// Stats returns a copy of the per-command statistics accumulated since the
// last ResetStats.
func (t *TPM) Stats() map[Op]OpStat {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[Op]OpStat, len(t.stats))
	for k, v := range t.stats {
		out[k] = v
	}
	return out
}

// ResetStats clears the per-command statistics.
func (t *TPM) ResetStats() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats = make(map[Op]OpStat)
}
