package tpm

import "errors"

var (
	// ErrNotStarted is returned when a command is issued before
	// TPM_Startup.
	ErrNotStarted = errors.New("tpm: device not started")

	// ErrBadPCRIndex is returned for PCR indices outside [0, NumPCRs).
	ErrBadPCRIndex = errors.New("tpm: PCR index out of range")

	// ErrBadLocality is returned for localities outside [0, 4] or for
	// operations not permitted at the caller's locality.
	ErrBadLocality = errors.New("tpm: operation not permitted at this locality")

	// ErrPCRNotResettable is returned when PCR_Reset targets a PCR whose
	// policy forbids reset at the caller's locality.
	ErrPCRNotResettable = errors.New("tpm: PCR not resettable at this locality")

	// ErrUnknownHandle is returned for key handles that do not exist.
	ErrUnknownHandle = errors.New("tpm: unknown key handle")

	// ErrWrongPCRState is returned by Unseal when the current PCR
	// composite does not match the sealed digest-at-release.
	ErrWrongPCRState = errors.New("tpm: PCR state does not match sealed policy")

	// ErrSealedBlobCorrupt is returned when a sealed blob fails
	// authenticated decryption (tampered or from another TPM).
	ErrSealedBlobCorrupt = errors.New("tpm: sealed blob corrupt or foreign")

	// ErrNVIndexExists is returned when defining an NV index that is
	// already defined.
	ErrNVIndexExists = errors.New("tpm: NV index already defined")

	// ErrNVIndexUndefined is returned for reads/writes of undefined NV
	// indices.
	ErrNVIndexUndefined = errors.New("tpm: NV index not defined")

	// ErrNVRange is returned when an NV access exceeds the defined area.
	ErrNVRange = errors.New("tpm: NV access out of range")

	// ErrCounterExists is returned when creating a counter with an ID
	// that is already in use.
	ErrCounterExists = errors.New("tpm: counter already exists")

	// ErrCounterUndefined is returned for operations on unknown counters.
	ErrCounterUndefined = errors.New("tpm: counter not defined")

	// ErrEmptySelection is returned when a quote or seal names no PCRs.
	ErrEmptySelection = errors.New("tpm: empty PCR selection")

	// ErrBadNonce is returned when external data of the wrong size is
	// supplied to Quote.
	ErrBadNonce = errors.New("tpm: external data must be exactly 20 bytes")
)
