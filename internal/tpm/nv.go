package tpm

import "fmt"

// maxNVSize bounds a single NV area; era TPMs offered ~1.2 KiB total, and
// the trusted-path system stores only small freshness records.
const maxNVSize = 4096

// NVDefine allocates a non-volatile storage area of the given size at
// index. The area is zero-filled.
func (t *TPM) NVDefine(index uint32, size int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.started {
		return ErrNotStarted
	}
	if size <= 0 || size > maxNVSize {
		return fmt.Errorf("tpm: NV size %d outside (0, %d]: %w", size, maxNVSize, ErrNVRange)
	}
	if _, ok := t.nv[index]; ok {
		return ErrNVIndexExists
	}
	t.charge(OpNVDefine)
	t.nv[index] = make([]byte, size)
	return nil
}

// NVWrite writes data into the NV area at the given offset.
func (t *TPM) NVWrite(index uint32, offset int, data []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.started {
		return ErrNotStarted
	}
	area, ok := t.nv[index]
	if !ok {
		return ErrNVIndexUndefined
	}
	if offset < 0 || offset+len(data) > len(area) {
		return ErrNVRange
	}
	t.charge(OpNVWrite)
	copy(area[offset:], data)
	return nil
}

// NVRead returns n bytes from the NV area starting at offset.
func (t *TPM) NVRead(index uint32, offset, n int) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.started {
		return nil, ErrNotStarted
	}
	area, ok := t.nv[index]
	if !ok {
		return nil, ErrNVIndexUndefined
	}
	if offset < 0 || n < 0 || offset+n > len(area) {
		return nil, ErrNVRange
	}
	t.charge(OpNVRead)
	out := make([]byte, n)
	copy(out, area[offset:offset+n])
	return out, nil
}

// CounterCreate allocates a monotonic counter starting at zero.
func (t *TPM) CounterCreate(id uint32) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.started {
		return ErrNotStarted
	}
	if _, ok := t.counters[id]; ok {
		return ErrCounterExists
	}
	t.charge(OpCounterCreate)
	t.counters[id] = 0
	return nil
}

// CounterIncrement advances a monotonic counter and returns the new value.
// Counters never decrease — the freshness anchor for sealed-state replay
// protection (experiment F5 ablation).
func (t *TPM) CounterIncrement(id uint32) (uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.started {
		return 0, ErrNotStarted
	}
	v, ok := t.counters[id]
	if !ok {
		return 0, ErrCounterUndefined
	}
	t.charge(OpCounterIncrement)
	v++
	t.counters[id] = v
	return v, nil
}

// CounterRead returns the current value of a monotonic counter.
func (t *TPM) CounterRead(id uint32) (uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.started {
		return 0, ErrNotStarted
	}
	v, ok := t.counters[id]
	if !ok {
		return 0, ErrCounterUndefined
	}
	t.charge(OpCounterRead)
	return v, nil
}
