package tpm

import "unitp/internal/cryptoutil"

// NumPCRs is the number of platform configuration registers in a TPM v1.2.
const NumPCRs = 24

// Well-known PCR indices used by the trusted-path system.
const (
	// PCRDRTM (17) receives the DRTM measurement of the late-launched
	// code (the PAL). It is resettable only at locality 4, which only
	// the CPU microcode asserts during SKINIT/SENTER — the root of the
	// whole security argument.
	PCRDRTM = 17

	// PCRTrustedOS (18) receives measurements of code the PAL itself
	// launches (unused by the minimal confirmation PAL, modelled for
	// completeness).
	PCRTrustedOS = 18

	// PCRApp (23) is the application PCR the confirmation PAL extends
	// with its input/output digest; resettable and extendable at any
	// locality.
	PCRApp = 23

	// PCRDebug (16) is the debug PCR, resettable at any locality.
	PCRDebug = 16
)

// pcrPolicy captures the PC-client locality policy of one PCR.
type pcrPolicy struct {
	// resetLocalities lists localities allowed to issue PCR_Reset.
	// Zero means the PCR is reset only by platform restart.
	resetLocalities LocalityMask

	// extendLocalities lists localities allowed to extend.
	extendLocalities LocalityMask

	// startupValue is the value after TPM_Startup(ST_CLEAR): zero for
	// static PCRs, all-0xFF for DRTM registers (so that the zero-prefix
	// state is reachable only via a genuine locality-4 reset).
	startupValue cryptoutil.Digest
}

// pcrPolicies is the PC-client-inspired policy table. Indices 0–15 are the
// static SRTM registers; 16 is debug; 17–22 are the dynamically
// resettable DRTM registers; 23 is the application register.
var pcrPolicies = buildPCRPolicies()

func buildPCRPolicies() [NumPCRs]pcrPolicy {
	var ps [NumPCRs]pcrPolicy
	ones := cryptoutil.OnesDigest()
	for i := 0; i <= 15; i++ {
		ps[i] = pcrPolicy{
			resetLocalities:  0, // static: reboot only
			extendLocalities: AllLocalities,
		}
	}
	ps[16] = pcrPolicy{ // debug
		resetLocalities:  AllLocalities,
		extendLocalities: AllLocalities,
	}
	ps[17] = pcrPolicy{ // DRTM measurement register
		resetLocalities:  MaskOf(4),
		extendLocalities: MaskOf(2, 3, 4),
		startupValue:     ones,
	}
	ps[18] = pcrPolicy{
		resetLocalities:  MaskOf(4),
		extendLocalities: MaskOf(2, 3, 4),
		startupValue:     ones,
	}
	ps[19] = pcrPolicy{
		resetLocalities:  MaskOf(4),
		extendLocalities: MaskOf(2, 3),
		startupValue:     ones,
	}
	ps[20] = pcrPolicy{
		resetLocalities:  MaskOf(2, 4),
		extendLocalities: MaskOf(1, 2, 3),
		startupValue:     ones,
	}
	ps[21] = pcrPolicy{
		resetLocalities:  MaskOf(2),
		extendLocalities: MaskOf(2),
		startupValue:     ones,
	}
	ps[22] = pcrPolicy{
		resetLocalities:  MaskOf(2),
		extendLocalities: MaskOf(2),
		startupValue:     ones,
	}
	ps[23] = pcrPolicy{ // application register
		resetLocalities:  AllLocalities,
		extendLocalities: AllLocalities,
	}
	return ps
}

// DynamicPCRs lists the DRTM registers reset by a late launch.
func DynamicPCRs() []int {
	return []int{17, 18, 19, 20, 21, 22}
}

func validPCR(idx int) bool { return idx >= 0 && idx < NumPCRs }

func validLocality(loc Locality) bool { return loc <= MaxLocality }

// Extend performs TPM_Extend at the given locality:
// PCR[idx] = SHA1(PCR[idx] || measurement). It returns the new value.
func (t *TPM) Extend(loc Locality, idx int, measurement cryptoutil.Digest) (cryptoutil.Digest, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.started {
		return cryptoutil.Digest{}, ErrNotStarted
	}
	if !validPCR(idx) {
		return cryptoutil.Digest{}, ErrBadPCRIndex
	}
	if !validLocality(loc) || !pcrPolicies[idx].extendLocalities.Contains(loc) {
		return cryptoutil.Digest{}, ErrBadLocality
	}
	t.charge(OpExtend)
	t.pcrs[idx] = cryptoutil.ExtendDigest(t.pcrs[idx], measurement)
	return t.pcrs[idx], nil
}

// PCRRead returns the current value of a PCR. Reads are permitted at any
// locality.
func (t *TPM) PCRRead(idx int) (cryptoutil.Digest, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.started {
		return cryptoutil.Digest{}, ErrNotStarted
	}
	if !validPCR(idx) {
		return cryptoutil.Digest{}, ErrBadPCRIndex
	}
	t.charge(OpPCRRead)
	return t.pcrs[idx], nil
}

// PCRReset performs TPM_PCR_Reset at the given locality, setting the PCR
// to zero. Static PCRs and localities outside the PCR's reset policy are
// rejected — the property that makes a zero-prefixed PCR 17 chain proof of
// a genuine late launch.
func (t *TPM) PCRReset(loc Locality, idx int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.started {
		return ErrNotStarted
	}
	if !validPCR(idx) {
		return ErrBadPCRIndex
	}
	if !validLocality(loc) {
		return ErrBadLocality
	}
	if !pcrPolicies[idx].resetLocalities.Contains(loc) {
		return ErrPCRNotResettable
	}
	t.charge(OpPCRReset)
	t.pcrs[idx] = cryptoutil.Digest{}
	return nil
}

// CurrentComposite computes the TPM_PCR_COMPOSITE hash over the current
// values of the selected PCRs — the digest a Quote would attest to and a
// Seal would bind to.
func (t *TPM) CurrentComposite(selection []int) (cryptoutil.Digest, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.started {
		return cryptoutil.Digest{}, ErrNotStarted
	}
	return t.compositeLocked(selection)
}

// compositeLocked computes the composite digest. Must be called with t.mu
// held.
func (t *TPM) compositeLocked(selection []int) (cryptoutil.Digest, error) {
	if len(selection) == 0 {
		return cryptoutil.Digest{}, ErrEmptySelection
	}
	values := make([]cryptoutil.Digest, 0, len(selection))
	for _, idx := range selection {
		if !validPCR(idx) {
			return cryptoutil.Digest{}, ErrBadPCRIndex
		}
		values = append(values, t.pcrs[idx])
	}
	return ComputeComposite(selection, values)
}
