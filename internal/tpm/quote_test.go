package tpm

import (
	"errors"
	"testing"

	"unitp/internal/cryptoutil"
)

func quoteFixture(t *testing.T) (*TPM, Handle, *Quote) {
	t.Helper()
	dev, _ := newTestTPM(t)
	h, _, err := dev.CreateAIK()
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a late launch so the quoted PCRs carry meaning.
	if err := dev.PCRReset(4, PCRDRTM); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Extend(4, PCRDRTM, cryptoutil.SHA1([]byte("pal-image"))); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Extend(2, PCRApp, cryptoutil.SHA1([]byte("output"))); err != nil {
		t.Fatal(err)
	}
	nonce := make([]byte, 20)
	copy(nonce, "nonce-for-the-quote!")
	q, err := dev.Quote(0, h, nonce, []int{PCRDRTM, PCRApp})
	if err != nil {
		t.Fatal(err)
	}
	return dev, h, q
}

func TestQuoteVerifies(t *testing.T) {
	dev, h, q := quoteFixture(t)
	_ = h
	key := dev.aiks[h]
	if err := VerifyQuote(&key.PublicKey, q); err != nil {
		t.Fatalf("VerifyQuote: %v", err)
	}
	if len(q.Selection) != 2 || q.Selection[0] != PCRDRTM || q.Selection[1] != PCRApp {
		t.Fatalf("selection = %v", q.Selection)
	}
	v17, ok := q.PCRValue(PCRDRTM)
	if !ok {
		t.Fatal("PCR17 missing from quote")
	}
	want := cryptoutil.ExtendDigest(cryptoutil.Digest{}, cryptoutil.SHA1([]byte("pal-image")))
	if v17 != want {
		t.Fatal("quoted PCR17 value wrong")
	}
	if _, ok := q.PCRValue(5); ok {
		t.Fatal("PCRValue returned a PCR not in the selection")
	}
}

func TestQuoteRejectsWrongKey(t *testing.T) {
	dev, _, q := quoteFixture(t)
	otherKey, err := cryptoutil.PooledKey(1000)
	if err != nil {
		t.Fatal(err)
	}
	_ = dev
	if err := VerifyQuote(&otherKey.PublicKey, q); err == nil {
		t.Fatal("quote verified under unrelated key")
	}
}

func TestQuoteTamperDetection(t *testing.T) {
	dev, h, q := quoteFixture(t)
	key := dev.aiks[h]

	// Tamper with a reported PCR value: composite recomputation must fail.
	tampered := *q
	tampered.PCRValues = append([]cryptoutil.Digest{}, q.PCRValues...)
	tampered.PCRValues[0] = cryptoutil.SHA1([]byte("forged"))
	if err := VerifyQuote(&key.PublicKey, &tampered); !errors.Is(err, ErrQuoteInconsistent) {
		t.Fatalf("tampered PCR value: %v, want ErrQuoteInconsistent", err)
	}

	// Tamper with the nonce: signature must fail.
	tampered2 := *q
	tampered2.ExternalData[0] ^= 1
	if err := VerifyQuote(&key.PublicKey, &tampered2); err == nil {
		t.Fatal("nonce substitution accepted")
	}

	// Tamper with the signature bytes.
	tampered3 := *q
	tampered3.Signature = append([]byte{}, q.Signature...)
	tampered3.Signature[10] ^= 1
	if err := VerifyQuote(&key.PublicKey, &tampered3); err == nil {
		t.Fatal("corrupted signature accepted")
	}

	// Consistent-but-different PCR values: recompute composite too, so
	// the signature check must catch it.
	tampered4 := *q
	tampered4.PCRValues = []cryptoutil.Digest{
		cryptoutil.SHA1([]byte("forged")),
		cryptoutil.SHA1([]byte("forged2")),
	}
	c, err := ComputeComposite(tampered4.Selection, tampered4.PCRValues)
	if err != nil {
		t.Fatal(err)
	}
	tampered4.CompositeDigest = c
	if err := VerifyQuote(&key.PublicKey, &tampered4); err == nil {
		t.Fatal("re-hashed forged PCR values accepted — signature did not bind composite")
	}
}

func TestQuoteErrors(t *testing.T) {
	dev, _ := newTestTPM(t)
	h, _, err := dev.CreateAIK()
	if err != nil {
		t.Fatal(err)
	}
	nonce := make([]byte, 20)
	if _, err := dev.Quote(0, h, nonce[:19], []int{17}); !errors.Is(err, ErrBadNonce) {
		t.Fatalf("short nonce: %v", err)
	}
	if _, err := dev.Quote(0, Handle(0xdead), nonce, []int{17}); !errors.Is(err, ErrUnknownHandle) {
		t.Fatalf("unknown handle: %v", err)
	}
	if _, err := dev.Quote(0, h, nonce, nil); !errors.Is(err, ErrEmptySelection) {
		t.Fatalf("empty selection: %v", err)
	}
	if _, err := dev.Quote(0, h, nonce, []int{50}); !errors.Is(err, ErrBadPCRIndex) {
		t.Fatalf("bad index: %v", err)
	}
	if _, err := dev.Quote(7, h, nonce, []int{17}); !errors.Is(err, ErrBadLocality) {
		t.Fatalf("bad locality: %v", err)
	}
}

func TestVerifyQuoteNilArgs(t *testing.T) {
	if err := VerifyQuote(nil, &Quote{}); err == nil {
		t.Fatal("nil key accepted")
	}
	k, err := cryptoutil.PooledKey(1001)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyQuote(&k.PublicKey, nil); err == nil {
		t.Fatal("nil quote accepted")
	}
}

func TestQuoteMarshalRoundTrip(t *testing.T) {
	dev, h, q := quoteFixture(t)
	key := dev.aiks[h]
	wire := q.Marshal()
	got, err := UnmarshalQuote(wire)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyQuote(&key.PublicKey, got); err != nil {
		t.Fatalf("round-tripped quote fails verification: %v", err)
	}
	if got.CompositeDigest != q.CompositeDigest {
		t.Fatal("composite digest changed in round trip")
	}
	if got.ExternalData != q.ExternalData {
		t.Fatal("external data changed in round trip")
	}
}

func TestUnmarshalQuoteRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalQuote([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage accepted")
	}
	// Valid quote with trailing junk must be rejected.
	_, _, q := quoteFixture(t)
	wire := append(q.Marshal(), 0xFF)
	if _, err := UnmarshalQuote(wire); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestQuoteBindsNonce(t *testing.T) {
	dev, _ := newTestTPM(t)
	h, pub, err := dev.CreateAIK()
	if err != nil {
		t.Fatal(err)
	}
	n1 := make([]byte, 20)
	n2 := make([]byte, 20)
	n2[0] = 1
	q1, err := dev.Quote(0, h, n1, []int{17})
	if err != nil {
		t.Fatal(err)
	}
	q2, err := dev.Quote(0, h, n2, []int{17})
	if err != nil {
		t.Fatal(err)
	}
	// Swapping the external data between otherwise identical quotes must
	// break verification (this is the replay defence).
	q1.ExternalData = q2.ExternalData
	if err := VerifyQuote(pub, q1); err == nil {
		t.Fatal("quote verified with swapped nonce")
	}
}
