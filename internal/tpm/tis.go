package tpm

import (
	"unitp/internal/cryptoutil"
)

// This file implements a TIS-style command transport: the byte-level
// request/response framing through which driver software addresses a
// TPM (TPM Interface Specification). The simulator's Go API (Extend,
// Quote, ...) is the chip's internal behaviour; the TIS layer is the
// bus-visible surface — useful for driver-level integration tests and
// for exercising exactly what a locality-tagged command frame may and
// may not do.
//
// Framing (TPM 1.2 main spec, part 3 style):
//
//	request  = tag(u16)=0x00C1 ‖ paramSize(u32) ‖ ordinal(u32) ‖ params
//	response = tag(u16)=0x00C4 ‖ paramSize(u32) ‖ returnCode(u32) ‖ params
//
// Only the command subset the trusted path uses is wired up.

// Command framing tags.
const (
	tagRequest  uint16 = 0x00C1
	tagResponse uint16 = 0x00C4
)

// Ordinal identifies a TPM command on the wire.
type Ordinal uint32

// Supported command ordinals (TPM 1.2 values where defined).
const (
	OrdExtend           Ordinal = 0x0000_0014
	OrdPCRRead          Ordinal = 0x0000_0015
	OrdQuote            Ordinal = 0x0000_0016
	OrdGetRandom        Ordinal = 0x0000_0046
	OrdPCRReset         Ordinal = 0x0000_00C8
	OrdCounterIncrement Ordinal = 0x0000_00DD
	OrdCounterRead      Ordinal = 0x0000_00DE
)

// ReturnCode is a TPM response status.
type ReturnCode uint32

// Response codes (TPM 1.2 values where defined).
const (
	RCSuccess      ReturnCode = 0x0000_0000
	RCBadParameter ReturnCode = 0x0000_0003
	RCBadIndex     ReturnCode = 0x0000_0002
	RCBadOrdinal   ReturnCode = 0x0000_000A
	RCBadLocality  ReturnCode = 0x0000_0029 // TPM_BAD_LOCALITY
	RCNotResetable ReturnCode = 0x0000_0032 // TPM_NOTRESETABLE
	RCFail         ReturnCode = 0x0000_0009
	RCBadTag       ReturnCode = 0x0000_001E
)

// TIS exposes a TPM device through the byte-level command interface.
type TIS struct {
	dev *TPM
}

// NewTIS wraps a device.
func NewTIS(dev *TPM) *TIS {
	return &TIS{dev: dev}
}

// errToRC maps device errors to wire return codes.
func errToRC(err error) ReturnCode {
	switch err {
	case nil:
		return RCSuccess
	case ErrBadPCRIndex:
		return RCBadIndex
	case ErrBadLocality:
		return RCBadLocality
	case ErrPCRNotResettable:
		return RCNotResetable
	case ErrBadNonce, ErrEmptySelection, ErrUnknownHandle:
		return RCBadParameter
	default:
		return RCFail
	}
}

// respond frames a response.
func respond(rc ReturnCode, params []byte) []byte {
	b := cryptoutil.NewBuffer(10 + len(params))
	b.PutUint16(tagResponse)
	b.PutUint32(uint32(10 + len(params)))
	b.PutUint32(uint32(rc))
	b.PutRaw(params)
	return b.Bytes()
}

// Execute processes one locality-tagged command frame and returns the
// response frame. Malformed frames yield error responses, never panics —
// the bus must survive hostile drivers.
func (t *TIS) Execute(locality Locality, request []byte) []byte {
	r := cryptoutil.NewReader(request)
	tag := r.Uint16()
	size := r.Uint32()
	ordinal := Ordinal(r.Uint32())
	if r.Err() != nil || tag != tagRequest {
		return respond(RCBadTag, nil)
	}
	if int(size) != len(request) {
		return respond(RCBadParameter, nil)
	}
	switch ordinal {
	case OrdExtend:
		idx := r.Uint32()
		digest := r.Digest()
		if r.ExpectEOF() != nil {
			return respond(RCBadParameter, nil)
		}
		newVal, err := t.dev.Extend(locality, int(idx), digest)
		if err != nil {
			return respond(errToRC(err), nil)
		}
		out := cryptoutil.NewBuffer(20)
		out.PutDigest(newVal)
		return respond(RCSuccess, out.Bytes())

	case OrdPCRRead:
		idx := r.Uint32()
		if r.ExpectEOF() != nil {
			return respond(RCBadParameter, nil)
		}
		val, err := t.dev.PCRRead(int(idx))
		if err != nil {
			return respond(errToRC(err), nil)
		}
		out := cryptoutil.NewBuffer(20)
		out.PutDigest(val)
		return respond(RCSuccess, out.Bytes())

	case OrdPCRReset:
		idx := r.Uint32()
		if r.ExpectEOF() != nil {
			return respond(RCBadParameter, nil)
		}
		if err := t.dev.PCRReset(locality, int(idx)); err != nil {
			return respond(errToRC(err), nil)
		}
		return respond(RCSuccess, nil)

	case OrdGetRandom:
		n := r.Uint32()
		if r.ExpectEOF() != nil || n > 1024 {
			return respond(RCBadParameter, nil)
		}
		buf, err := t.dev.GetRandom(int(n))
		if err != nil {
			return respond(errToRC(err), nil)
		}
		out := cryptoutil.NewBuffer(4 + len(buf))
		out.PutBytes(buf)
		return respond(RCSuccess, out.Bytes())

	case OrdQuote:
		handle := Handle(r.Uint32())
		nonce := r.Raw(20)
		var bm [selectionBitmapSize]byte
		copy(bm[:], r.Raw(selectionBitmapSize))
		if r.ExpectEOF() != nil {
			return respond(RCBadParameter, nil)
		}
		quote, err := t.dev.Quote(locality, handle, nonce, SelectionFromBitmap(bm))
		if err != nil {
			return respond(errToRC(err), nil)
		}
		wire := quote.Marshal()
		out := cryptoutil.NewBuffer(4 + len(wire))
		out.PutBytes(wire)
		return respond(RCSuccess, out.Bytes())

	case OrdCounterIncrement:
		id := r.Uint32()
		if r.ExpectEOF() != nil {
			return respond(RCBadParameter, nil)
		}
		v, err := t.dev.CounterIncrement(id)
		if err != nil {
			return respond(errToRC(err), nil)
		}
		out := cryptoutil.NewBuffer(8)
		out.PutUint64(v)
		return respond(RCSuccess, out.Bytes())

	case OrdCounterRead:
		id := r.Uint32()
		if r.ExpectEOF() != nil {
			return respond(RCBadParameter, nil)
		}
		v, err := t.dev.CounterRead(id)
		if err != nil {
			return respond(errToRC(err), nil)
		}
		out := cryptoutil.NewBuffer(8)
		out.PutUint64(v)
		return respond(RCSuccess, out.Bytes())

	default:
		return respond(RCBadOrdinal, nil)
	}
}

// Request builders and response parsers (the driver side of the bus).

// frameRequest builds a request frame for an ordinal and params.
func frameRequest(ordinal Ordinal, params []byte) []byte {
	b := cryptoutil.NewBuffer(10 + len(params))
	b.PutUint16(tagRequest)
	b.PutUint32(uint32(10 + len(params)))
	b.PutUint32(uint32(ordinal))
	b.PutRaw(params)
	return b.Bytes()
}

// EncodeExtendRequest frames TPM_Extend.
func EncodeExtendRequest(idx int, digest cryptoutil.Digest) []byte {
	b := cryptoutil.NewBuffer(24)
	b.PutUint32(uint32(idx))
	b.PutDigest(digest)
	return frameRequest(OrdExtend, b.Bytes())
}

// EncodePCRReadRequest frames TPM_PCRRead.
func EncodePCRReadRequest(idx int) []byte {
	b := cryptoutil.NewBuffer(4)
	b.PutUint32(uint32(idx))
	return frameRequest(OrdPCRRead, b.Bytes())
}

// EncodePCRResetRequest frames TPM_PCR_Reset.
func EncodePCRResetRequest(idx int) []byte {
	b := cryptoutil.NewBuffer(4)
	b.PutUint32(uint32(idx))
	return frameRequest(OrdPCRReset, b.Bytes())
}

// EncodeGetRandomRequest frames TPM_GetRandom.
func EncodeGetRandomRequest(n int) []byte {
	b := cryptoutil.NewBuffer(4)
	b.PutUint32(uint32(n))
	return frameRequest(OrdGetRandom, b.Bytes())
}

// EncodeQuoteRequest frames TPM_Quote.
func EncodeQuoteRequest(handle Handle, nonce []byte, selection []int) ([]byte, error) {
	sel, err := NormalizeSelection(selection)
	if err != nil {
		return nil, err
	}
	if len(nonce) != 20 {
		return nil, ErrBadNonce
	}
	bm := selectionBitmap(sel)
	b := cryptoutil.NewBuffer(4 + 20 + selectionBitmapSize)
	b.PutUint32(uint32(handle))
	b.PutRaw(nonce)
	b.PutRaw(bm[:])
	return frameRequest(OrdQuote, b.Bytes()), nil
}

// EncodeCounterIncrementRequest frames TPM_IncrementCounter.
func EncodeCounterIncrementRequest(id uint32) []byte {
	b := cryptoutil.NewBuffer(4)
	b.PutUint32(id)
	return frameRequest(OrdCounterIncrement, b.Bytes())
}

// EncodeCounterReadRequest frames TPM_ReadCounter.
func EncodeCounterReadRequest(id uint32) []byte {
	b := cryptoutil.NewBuffer(4)
	b.PutUint32(id)
	return frameRequest(OrdCounterRead, b.Bytes())
}

// ParseResponse splits a response frame into its return code and
// parameter bytes.
func ParseResponse(response []byte) (ReturnCode, []byte, error) {
	r := cryptoutil.NewReader(response)
	tag := r.Uint16()
	size := r.Uint32()
	rc := ReturnCode(r.Uint32())
	if r.Err() != nil || tag != tagResponse {
		return RCBadTag, nil, ErrBufferTooShort
	}
	if int(size) != len(response) {
		return RCBadTag, nil, ErrBufferTooShort
	}
	return rc, r.Raw(r.Remaining()), nil
}

// ErrBufferTooShort is returned when a response frame is malformed.
var ErrBufferTooShort = cryptoutil.ErrBufferUnderflow
