package tpm

import (
	"errors"
	"testing"
	"testing/quick"

	"unitp/internal/cryptoutil"
)

func TestExtendChain(t *testing.T) {
	dev, _ := newTestTPM(t)
	m1 := cryptoutil.SHA1([]byte("first"))
	m2 := cryptoutil.SHA1([]byte("second"))

	v1, err := dev.Extend(0, 10, m1)
	if err != nil {
		t.Fatal(err)
	}
	want1 := cryptoutil.ExtendDigest(cryptoutil.Digest{}, m1)
	if v1 != want1 {
		t.Fatalf("after first extend: %v, want %v", v1, want1)
	}
	v2, err := dev.Extend(0, 10, m2)
	if err != nil {
		t.Fatal(err)
	}
	if want2 := cryptoutil.ExtendDigest(want1, m2); v2 != want2 {
		t.Fatalf("after second extend: %v, want %v", v2, want2)
	}
	read, err := dev.PCRRead(10)
	if err != nil {
		t.Fatal(err)
	}
	if read != v2 {
		t.Fatal("PCRRead disagrees with Extend return value")
	}
}

func TestExtendIsolatedPerPCR(t *testing.T) {
	dev, _ := newTestTPM(t)
	m := cryptoutil.SHA1([]byte("m"))
	if _, err := dev.Extend(0, 3, m); err != nil {
		t.Fatal(err)
	}
	v, err := dev.PCRRead(4)
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsZero() {
		t.Fatal("extending PCR 3 changed PCR 4")
	}
}

func TestExtendBadIndex(t *testing.T) {
	dev, _ := newTestTPM(t)
	m := cryptoutil.SHA1([]byte("m"))
	for _, idx := range []int{-1, NumPCRs, 1000} {
		if _, err := dev.Extend(0, idx, m); !errors.Is(err, ErrBadPCRIndex) {
			t.Fatalf("Extend(%d): %v, want ErrBadPCRIndex", idx, err)
		}
	}
	if _, err := dev.PCRRead(-1); !errors.Is(err, ErrBadPCRIndex) {
		t.Fatalf("PCRRead(-1): %v", err)
	}
	if err := dev.PCRReset(4, NumPCRs); !errors.Is(err, ErrBadPCRIndex) {
		t.Fatalf("PCRReset(24): %v", err)
	}
}

func TestDRTMPCRLocalityPolicy(t *testing.T) {
	dev, _ := newTestTPM(t)
	m := cryptoutil.SHA1([]byte("slb"))

	// The OS (locality 0) must be unable to extend or reset PCR 17.
	if _, err := dev.Extend(0, PCRDRTM, m); !errors.Is(err, ErrBadLocality) {
		t.Fatalf("locality-0 extend of PCR17: %v, want ErrBadLocality", err)
	}
	for loc := Locality(0); loc <= 3; loc++ {
		if err := dev.PCRReset(loc, PCRDRTM); !errors.Is(err, ErrPCRNotResettable) {
			t.Fatalf("locality-%d reset of PCR17: %v, want ErrPCRNotResettable", loc, err)
		}
	}
	// Locality 4 (CPU during late launch) may reset, then extend.
	if err := dev.PCRReset(4, PCRDRTM); err != nil {
		t.Fatalf("locality-4 reset: %v", err)
	}
	v, err := dev.PCRRead(PCRDRTM)
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsZero() {
		t.Fatal("PCR17 not zero after locality-4 reset")
	}
	if _, err := dev.Extend(4, PCRDRTM, m); err != nil {
		t.Fatalf("locality-4 extend: %v", err)
	}
}

func TestStaticPCRsNotResettable(t *testing.T) {
	dev, _ := newTestTPM(t)
	for idx := 0; idx <= 15; idx++ {
		for loc := Locality(0); loc <= MaxLocality; loc++ {
			if err := dev.PCRReset(loc, idx); !errors.Is(err, ErrPCRNotResettable) {
				t.Fatalf("reset of static PCR %d at locality %d: %v", idx, loc, err)
			}
		}
	}
}

func TestDebugAndAppPCRsResettableAnywhere(t *testing.T) {
	dev, _ := newTestTPM(t)
	m := cryptoutil.SHA1([]byte("m"))
	for _, idx := range []int{PCRDebug, PCRApp} {
		if _, err := dev.Extend(0, idx, m); err != nil {
			t.Fatalf("extend PCR %d: %v", idx, err)
		}
		if err := dev.PCRReset(0, idx); err != nil {
			t.Fatalf("reset PCR %d at locality 0: %v", idx, err)
		}
		v, err := dev.PCRRead(idx)
		if err != nil {
			t.Fatal(err)
		}
		if !v.IsZero() {
			t.Fatalf("PCR %d not zero after reset", idx)
		}
	}
}

func TestInvalidLocalityRejected(t *testing.T) {
	dev, _ := newTestTPM(t)
	m := cryptoutil.SHA1([]byte("m"))
	if _, err := dev.Extend(5, 0, m); !errors.Is(err, ErrBadLocality) {
		t.Fatalf("Extend at locality 5: %v", err)
	}
	if err := dev.PCRReset(9, PCRDebug); !errors.Is(err, ErrBadLocality) {
		t.Fatalf("PCRReset at locality 9: %v", err)
	}
}

func TestZeroPrefixPCR17UnreachableWithoutLocality4(t *testing.T) {
	// The core DRTM security property: starting from power-on (all-ones),
	// no sequence of locality-0..3 operations can bring PCR 17 to a chain
	// rooted at zero, because extend never produces the zero digest and
	// reset is locality-4 gated.
	dev, _ := newTestTPM(t)
	measurement := cryptoutil.SHA1([]byte("fake-pal"))
	target := cryptoutil.ExtendDigest(cryptoutil.Digest{}, measurement)

	// Attacker attempts: direct extends at permitted localities 2 and 3.
	for _, loc := range []Locality{2, 3} {
		if _, err := dev.Extend(loc, PCRDRTM, measurement); err != nil {
			t.Fatalf("extend at locality %d should be allowed: %v", loc, err)
		}
	}
	v, err := dev.PCRRead(PCRDRTM)
	if err != nil {
		t.Fatal(err)
	}
	if v == target {
		t.Fatal("attacker reached DRTM-rooted PCR17 value without locality 4")
	}
}

func TestCurrentCompositeMatchesComputeComposite(t *testing.T) {
	dev, _ := newTestTPM(t)
	m := cryptoutil.SHA1([]byte("m"))
	if _, err := dev.Extend(0, 1, m); err != nil {
		t.Fatal(err)
	}
	sel := []int{1, 2}
	got, err := dev.CurrentComposite(sel)
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := dev.PCRRead(1)
	v2, _ := dev.PCRRead(2)
	want, err := ComputeComposite(sel, []cryptoutil.Digest{v1, v2})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("CurrentComposite disagrees with ComputeComposite")
	}
}

func TestCompositeSelectionOrderCanonical(t *testing.T) {
	dev, _ := newTestTPM(t)
	a, err := dev.CurrentComposite([]int{1, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := dev.CurrentComposite([]int{9, 1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("composite depends on selection order")
	}
}

func TestCompositeEmptySelection(t *testing.T) {
	dev, _ := newTestTPM(t)
	if _, err := dev.CurrentComposite(nil); !errors.Is(err, ErrEmptySelection) {
		t.Fatalf("empty selection: %v", err)
	}
}

func TestNormalizeSelection(t *testing.T) {
	got, err := NormalizeSelection([]int{5, 1, 5, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("NormalizeSelection = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NormalizeSelection = %v, want %v", got, want)
		}
	}
	if _, err := NormalizeSelection([]int{24}); !errors.Is(err, ErrBadPCRIndex) {
		t.Fatalf("out-of-range index: %v", err)
	}
	if _, err := NormalizeSelection(nil); !errors.Is(err, ErrEmptySelection) {
		t.Fatalf("empty: %v", err)
	}
}

func TestSelectionBitmapRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		// Build a selection from arbitrary bytes.
		seen := map[int]bool{}
		var sel []int
		for _, b := range raw {
			idx := int(b) % NumPCRs
			if !seen[idx] {
				seen[idx] = true
				sel = append(sel, idx)
			}
		}
		if len(sel) == 0 {
			return true
		}
		norm, err := NormalizeSelection(sel)
		if err != nil {
			return false
		}
		round := SelectionFromBitmap(selectionBitmap(norm))
		if len(round) != len(norm) {
			return false
		}
		for i := range norm {
			if round[i] != norm[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompositeDistinguishesValues(t *testing.T) {
	// Property: changing any selected PCR value changes the composite.
	sel := []int{17, 23}
	v1 := []cryptoutil.Digest{cryptoutil.SHA1([]byte("a")), cryptoutil.SHA1([]byte("b"))}
	v2 := []cryptoutil.Digest{cryptoutil.SHA1([]byte("a")), cryptoutil.SHA1([]byte("c"))}
	c1, err := ComputeComposite(sel, v1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ComputeComposite(sel, v2)
	if err != nil {
		t.Fatal(err)
	}
	if c1 == c2 {
		t.Fatal("composite collision on different PCR values")
	}
}

func TestComputeCompositeErrors(t *testing.T) {
	d := cryptoutil.SHA1([]byte("x"))
	if _, err := ComputeComposite(nil, nil); !errors.Is(err, ErrEmptySelection) {
		t.Fatalf("empty: %v", err)
	}
	if _, err := ComputeComposite([]int{1}, nil); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := ComputeComposite([]int{99}, []cryptoutil.Digest{d}); !errors.Is(err, ErrBadPCRIndex) {
		t.Fatalf("bad index: %v", err)
	}
	if _, err := ComputeComposite([]int{1, 1}, []cryptoutil.Digest{d, d}); err == nil {
		t.Fatal("duplicate selection accepted")
	}
}
