package tpm

import (
	"bytes"
	"testing"

	"unitp/internal/cryptoutil"
)

func newTestTIS(t *testing.T) (*TIS, *TPM) {
	t.Helper()
	dev, _ := newTestTPM(t)
	return NewTIS(dev), dev
}

func TestTISExtendAndRead(t *testing.T) {
	tis, dev := newTestTIS(t)
	m := cryptoutil.SHA1([]byte("measurement"))

	rc, params, err := ParseResponse(tis.Execute(0, EncodeExtendRequest(10, m)))
	if err != nil {
		t.Fatal(err)
	}
	if rc != RCSuccess {
		t.Fatalf("extend rc = %#x", rc)
	}
	want := cryptoutil.ExtendDigest(cryptoutil.Digest{}, m)
	if !bytes.Equal(params, want[:]) {
		t.Fatalf("extend returned %x", params)
	}
	// Device state matches.
	direct, err := dev.PCRRead(10)
	if err != nil {
		t.Fatal(err)
	}
	if direct != want {
		t.Fatal("TIS extend did not reach the device")
	}
	// Read it back over the bus.
	rc, params, err = ParseResponse(tis.Execute(0, EncodePCRReadRequest(10)))
	if err != nil || rc != RCSuccess {
		t.Fatalf("read rc = %#x, %v", rc, err)
	}
	if !bytes.Equal(params, want[:]) {
		t.Fatalf("read returned %x", params)
	}
}

func TestTISLocalityEnforcement(t *testing.T) {
	tis, _ := newTestTIS(t)
	// PCR 17 reset from locality 0 must be refused with the TPM 1.2
	// code.
	rc, _, err := ParseResponse(tis.Execute(0, EncodePCRResetRequest(PCRDRTM)))
	if err != nil {
		t.Fatal(err)
	}
	if rc != RCNotResetable {
		t.Fatalf("rc = %#x, want RCNotResetable", rc)
	}
	// Locality 4 succeeds.
	rc, _, err = ParseResponse(tis.Execute(4, EncodePCRResetRequest(PCRDRTM)))
	if err != nil || rc != RCSuccess {
		t.Fatalf("locality-4 reset rc = %#x, %v", rc, err)
	}
	// Extend of PCR 17 at locality 0: bad locality.
	m := cryptoutil.SHA1([]byte("x"))
	rc, _, err = ParseResponse(tis.Execute(0, EncodeExtendRequest(PCRDRTM, m)))
	if err != nil || rc != RCBadLocality {
		t.Fatalf("locality-0 extend rc = %#x, %v", rc, err)
	}
}

func TestTISGetRandom(t *testing.T) {
	tis, _ := newTestTIS(t)
	rc, params, err := ParseResponse(tis.Execute(0, EncodeGetRandomRequest(16)))
	if err != nil || rc != RCSuccess {
		t.Fatalf("rc = %#x, %v", rc, err)
	}
	r := cryptoutil.NewReader(params)
	buf := r.Bytes()
	if len(buf) != 16 {
		t.Fatalf("random bytes = %d", len(buf))
	}
	// Oversize requests are refused.
	rc, _, err = ParseResponse(tis.Execute(0, EncodeGetRandomRequest(10_000)))
	if err != nil || rc != RCBadParameter {
		t.Fatalf("oversize rc = %#x, %v", rc, err)
	}
}

func TestTISQuote(t *testing.T) {
	tis, dev := newTestTIS(t)
	handle, pub, err := dev.CreateAIK()
	if err != nil {
		t.Fatal(err)
	}
	nonce := make([]byte, 20)
	copy(nonce, "tis-quote-nonce-20bb")
	req, err := EncodeQuoteRequest(handle, nonce, []int{PCRDRTM, PCRApp})
	if err != nil {
		t.Fatal(err)
	}
	rc, params, err := ParseResponse(tis.Execute(0, req))
	if err != nil || rc != RCSuccess {
		t.Fatalf("rc = %#x, %v", rc, err)
	}
	r := cryptoutil.NewReader(params)
	quote, err := UnmarshalQuote(r.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyQuote(pub, quote); err != nil {
		t.Fatalf("bus-transported quote invalid: %v", err)
	}
	// Unknown handle over the bus.
	req, err = EncodeQuoteRequest(Handle(0xdead), nonce, []int{17})
	if err != nil {
		t.Fatal(err)
	}
	rc, _, err = ParseResponse(tis.Execute(0, req))
	if err != nil || rc != RCBadParameter {
		t.Fatalf("unknown handle rc = %#x, %v", rc, err)
	}
}

func TestTISQuoteRequestValidation(t *testing.T) {
	if _, err := EncodeQuoteRequest(1, make([]byte, 19), []int{17}); err == nil {
		t.Fatal("short nonce accepted")
	}
	if _, err := EncodeQuoteRequest(1, make([]byte, 20), nil); err == nil {
		t.Fatal("empty selection accepted")
	}
}

func TestTISCounters(t *testing.T) {
	tis, dev := newTestTIS(t)
	if err := dev.CounterCreate(5); err != nil {
		t.Fatal(err)
	}
	rc, params, err := ParseResponse(tis.Execute(0, EncodeCounterIncrementRequest(5)))
	if err != nil || rc != RCSuccess {
		t.Fatalf("rc = %#x, %v", rc, err)
	}
	if v := cryptoutil.NewReader(params).Uint64(); v != 1 {
		t.Fatalf("counter = %d", v)
	}
	rc, params, err = ParseResponse(tis.Execute(0, EncodeCounterReadRequest(5)))
	if err != nil || rc != RCSuccess {
		t.Fatalf("rc = %#x, %v", rc, err)
	}
	if v := cryptoutil.NewReader(params).Uint64(); v != 1 {
		t.Fatalf("counter read = %d", v)
	}
	// Undefined counter fails on the bus.
	rc, _, err = ParseResponse(tis.Execute(0, EncodeCounterReadRequest(99)))
	if err != nil || rc != RCFail {
		t.Fatalf("undefined counter rc = %#x, %v", rc, err)
	}
}

func TestTISHostileFrames(t *testing.T) {
	tis, _ := newTestTIS(t)
	cases := []struct {
		name string
		req  []byte
		want ReturnCode
	}{
		{"empty", nil, RCBadTag},
		{"short", []byte{0x00, 0xC1}, RCBadTag},
		{"wrong tag", frameWithTag(0x00C4, uint32(OrdPCRRead)), RCBadTag},
		{"bad ordinal", frameRequest(Ordinal(0xFFFF), nil), RCBadOrdinal},
		{"length lies", lengthLie(), RCBadParameter},
		{"truncated params", frameRequest(OrdExtend, []byte{0, 0}), RCBadParameter},
		{"trailing params", frameRequest(OrdPCRReset, []byte{0, 0, 0, 16, 0xAA}), RCBadParameter},
	}
	for _, tc := range cases {
		rc, _, err := ParseResponse(tis.Execute(0, tc.req))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if rc != tc.want {
			t.Fatalf("%s: rc = %#x, want %#x", tc.name, rc, tc.want)
		}
	}
}

// frameWithTag builds a frame with an arbitrary tag.
func frameWithTag(tag uint16, ordinal uint32) []byte {
	b := cryptoutil.NewBuffer(10)
	b.PutUint16(tag)
	b.PutUint32(10)
	b.PutUint32(ordinal)
	return b.Bytes()
}

// lengthLie builds a frame whose declared size disagrees with its
// actual length.
func lengthLie() []byte {
	b := cryptoutil.NewBuffer(10)
	b.PutUint16(tagRequest)
	b.PutUint32(99)
	b.PutUint32(uint32(OrdPCRRead))
	return b.Bytes()
}

func TestParseResponseRejectsGarbage(t *testing.T) {
	if _, _, err := ParseResponse([]byte{1, 2}); err == nil {
		t.Fatal("garbage response accepted")
	}
	// Response with lying size.
	b := cryptoutil.NewBuffer(10)
	b.PutUint16(tagResponse)
	b.PutUint32(5)
	b.PutUint32(0)
	if _, _, err := ParseResponse(b.Bytes()); err == nil {
		t.Fatal("lying response size accepted")
	}
}

func TestTISBeforeStartup(t *testing.T) {
	dev, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	tis := NewTIS(dev)
	rc, _, err := ParseResponse(tis.Execute(0, EncodePCRReadRequest(0)))
	if err != nil {
		t.Fatal(err)
	}
	if rc != RCFail {
		t.Fatalf("pre-startup rc = %#x", rc)
	}
}
