package tpm

import (
	"bytes"
	"errors"
	"testing"
)

func TestNVDefineWriteRead(t *testing.T) {
	dev, _ := newTestTPM(t)
	if err := dev.NVDefine(1, 32); err != nil {
		t.Fatal(err)
	}
	data := []byte("freshness-record")
	if err := dev.NVWrite(1, 4, data); err != nil {
		t.Fatal(err)
	}
	got, err := dev.NVRead(1, 4, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("NVRead = %q, want %q", got, data)
	}
	// Unwritten bytes remain zero.
	head, err := dev.NVRead(1, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(head, make([]byte, 4)) {
		t.Fatalf("unwritten area = %v", head)
	}
}

func TestNVReadCopies(t *testing.T) {
	dev, _ := newTestTPM(t)
	if err := dev.NVDefine(1, 8); err != nil {
		t.Fatal(err)
	}
	if err := dev.NVWrite(1, 0, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	a, err := dev.NVRead(1, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	a[0] = 99 // must not write through to NV
	b, err := dev.NVRead(1, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 1 {
		t.Fatal("NVRead exposed internal storage")
	}
}

func TestNVErrors(t *testing.T) {
	dev, _ := newTestTPM(t)
	if err := dev.NVDefine(1, 16); err != nil {
		t.Fatal(err)
	}
	if err := dev.NVDefine(1, 16); !errors.Is(err, ErrNVIndexExists) {
		t.Fatalf("redefine: %v", err)
	}
	if err := dev.NVDefine(2, 0); !errors.Is(err, ErrNVRange) {
		t.Fatalf("zero size: %v", err)
	}
	if err := dev.NVDefine(2, maxNVSize+1); !errors.Is(err, ErrNVRange) {
		t.Fatalf("oversize: %v", err)
	}
	if err := dev.NVWrite(9, 0, []byte{1}); !errors.Is(err, ErrNVIndexUndefined) {
		t.Fatalf("write undefined: %v", err)
	}
	if _, err := dev.NVRead(9, 0, 1); !errors.Is(err, ErrNVIndexUndefined) {
		t.Fatalf("read undefined: %v", err)
	}
	if err := dev.NVWrite(1, 15, []byte{1, 2}); !errors.Is(err, ErrNVRange) {
		t.Fatalf("write past end: %v", err)
	}
	if err := dev.NVWrite(1, -1, []byte{1}); !errors.Is(err, ErrNVRange) {
		t.Fatalf("negative offset: %v", err)
	}
	if _, err := dev.NVRead(1, 8, 9); !errors.Is(err, ErrNVRange) {
		t.Fatalf("read past end: %v", err)
	}
	if _, err := dev.NVRead(1, 0, -1); !errors.Is(err, ErrNVRange) {
		t.Fatalf("negative count: %v", err)
	}
}

func TestCounterMonotonicity(t *testing.T) {
	dev, _ := newTestTPM(t)
	if err := dev.CounterCreate(7); err != nil {
		t.Fatal(err)
	}
	v0, err := dev.CounterRead(7)
	if err != nil {
		t.Fatal(err)
	}
	if v0 != 0 {
		t.Fatalf("fresh counter = %d", v0)
	}
	prev := uint64(0)
	for i := 0; i < 10; i++ {
		v, err := dev.CounterIncrement(7)
		if err != nil {
			t.Fatal(err)
		}
		if v != prev+1 {
			t.Fatalf("increment %d: got %d, want %d", i, v, prev+1)
		}
		prev = v
	}
	final, err := dev.CounterRead(7)
	if err != nil {
		t.Fatal(err)
	}
	if final != 10 {
		t.Fatalf("final counter = %d, want 10", final)
	}
}

func TestCounterErrors(t *testing.T) {
	dev, _ := newTestTPM(t)
	if err := dev.CounterCreate(1); err != nil {
		t.Fatal(err)
	}
	if err := dev.CounterCreate(1); !errors.Is(err, ErrCounterExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if _, err := dev.CounterIncrement(2); !errors.Is(err, ErrCounterUndefined) {
		t.Fatalf("increment undefined: %v", err)
	}
	if _, err := dev.CounterRead(2); !errors.Is(err, ErrCounterUndefined) {
		t.Fatalf("read undefined: %v", err)
	}
}

func TestNVAndCountersRequireStartup(t *testing.T) {
	dev, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.NVDefine(1, 8); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("NVDefine: %v", err)
	}
	if err := dev.CounterCreate(1); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("CounterCreate: %v", err)
	}
	if _, err := dev.CounterIncrement(1); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("CounterIncrement: %v", err)
	}
	if _, err := dev.CounterRead(1); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("CounterRead: %v", err)
	}
	if err := dev.NVWrite(1, 0, nil); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("NVWrite: %v", err)
	}
	if _, err := dev.NVRead(1, 0, 0); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("NVRead: %v", err)
	}
	if _, err := dev.Seal(0, []int{0}, [20]byte{}, 0, nil); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("Seal: %v", err)
	}
	if _, err := dev.Unseal(0, &SealedBlob{}); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("Unseal: %v", err)
	}
	if _, err := dev.Quote(0, 1, make([]byte, 20), []int{0}); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("Quote: %v", err)
	}
	if _, err := dev.CurrentComposite([]int{0}); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("CurrentComposite: %v", err)
	}
}
