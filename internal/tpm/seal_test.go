package tpm

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"unitp/internal/cryptoutil"
	"unitp/internal/sim"
)

func TestSealUnsealRoundTrip(t *testing.T) {
	dev, _ := newTestTPM(t)
	secret := []byte("long-term HMAC key material")
	blob, err := dev.SealCurrent(0, []int{0, 1}, AllLocalities, secret)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dev.Unseal(0, blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatalf("unsealed %q, want %q", got, secret)
	}
}

func TestUnsealFailsAfterPCRChange(t *testing.T) {
	dev, _ := newTestTPM(t)
	secret := []byte("secret")
	blob, err := dev.SealCurrent(0, []int{5}, AllLocalities, secret)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Extend(0, 5, cryptoutil.SHA1([]byte("change"))); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Unseal(0, blob); !errors.Is(err, ErrWrongPCRState) {
		t.Fatalf("unseal after PCR change: %v, want ErrWrongPCRState", err)
	}
}

func TestSealToFutureState(t *testing.T) {
	// A provider seals a secret to the PCR state a PAL *will* have after
	// late launch. The OS cannot unseal; the correctly measured PAL can.
	dev, _ := newTestTPM(t)
	palMeasurement := cryptoutil.SHA1([]byte("confirmation-pal-v1"))
	futurePCR17 := cryptoutil.ExtendDigest(cryptoutil.Digest{}, palMeasurement)
	future, err := ComputeComposite([]int{PCRDRTM}, []cryptoutil.Digest{futurePCR17})
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("sealed to the PAL identity")
	blob, err := dev.Seal(0, []int{PCRDRTM}, future, MaskOf(2), secret)
	if err != nil {
		t.Fatal(err)
	}

	// OS state (PCR17 = all ones): unseal must fail even at locality 2.
	if _, err := dev.Unseal(2, blob); !errors.Is(err, ErrWrongPCRState) {
		t.Fatalf("unseal in OS state: %v", err)
	}

	// Late launch of the right PAL: locality-4 reset + measurement.
	if err := dev.PCRReset(4, PCRDRTM); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Extend(4, PCRDRTM, palMeasurement); err != nil {
		t.Fatal(err)
	}
	got, err := dev.Unseal(2, blob)
	if err != nil {
		t.Fatalf("unseal inside correct PAL: %v", err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("wrong plaintext")
	}

	// Locality policy: even with matching PCRs, locality 0 is refused.
	if _, err := dev.Unseal(0, blob); !errors.Is(err, ErrBadLocality) {
		t.Fatalf("unseal at disallowed locality: %v", err)
	}
}

func TestWrongPALCannotUnseal(t *testing.T) {
	dev, _ := newTestTPM(t)
	goodPAL := cryptoutil.SHA1([]byte("good-pal"))
	futurePCR17 := cryptoutil.ExtendDigest(cryptoutil.Digest{}, goodPAL)
	future, err := ComputeComposite([]int{PCRDRTM}, []cryptoutil.Digest{futurePCR17})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := dev.Seal(0, []int{PCRDRTM}, future, AllLocalities, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	// A *different* PAL launches (attacker-supplied code): measured
	// honestly by the CPU, so PCR17 differs.
	if err := dev.PCRReset(4, PCRDRTM); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Extend(4, PCRDRTM, cryptoutil.SHA1([]byte("evil-pal"))); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Unseal(2, blob); !errors.Is(err, ErrWrongPCRState) {
		t.Fatalf("evil PAL unsealed the secret: %v", err)
	}
}

func TestSealedBlobTamperDetected(t *testing.T) {
	dev, _ := newTestTPM(t)
	blob, err := dev.SealCurrent(0, []int{0}, AllLocalities, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	blob.Ciphertext[0] ^= 1
	if _, err := dev.Unseal(0, blob); !errors.Is(err, ErrSealedBlobCorrupt) {
		t.Fatalf("tampered ciphertext: %v", err)
	}
}

func TestSealedBlobPolicyTamperDetected(t *testing.T) {
	// Attacker rewrites the release policy on a blob (e.g. widening the
	// PCR selection to one they control). AAD binding must catch it.
	dev, _ := newTestTPM(t)
	blob, err := dev.SealCurrent(0, []int{5}, AllLocalities, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	// Extend PCR 5, then rewrite the policy to match the *new* state.
	if _, err := dev.Extend(0, 5, cryptoutil.SHA1([]byte("x"))); err != nil {
		t.Fatal(err)
	}
	newComposite, err := dev.CurrentComposite([]int{5})
	if err != nil {
		t.Fatal(err)
	}
	blob.Info.ReleaseComposite = newComposite
	if _, err := dev.Unseal(0, blob); !errors.Is(err, ErrSealedBlobCorrupt) {
		t.Fatalf("policy rewrite: %v, want ErrSealedBlobCorrupt", err)
	}
}

func TestSealedBlobForeignTPM(t *testing.T) {
	devA, _ := newTestTPM(t)
	clock := sim.NewVirtualClock()
	devB, err := New(Config{Clock: clock, Random: sim.NewRand(99)})
	if err != nil {
		t.Fatal(err)
	}
	if err := devB.Startup(); err != nil {
		t.Fatal(err)
	}
	blob, err := devA.SealCurrent(0, []int{0}, AllLocalities, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := devB.Unseal(0, blob); !errors.Is(err, ErrSealedBlobCorrupt) {
		t.Fatalf("foreign TPM unsealed blob: %v", err)
	}
}

func TestSealedBlobMarshalRoundTrip(t *testing.T) {
	dev, _ := newTestTPM(t)
	secret := []byte("persisted by the untrusted OS")
	blob, err := dev.SealCurrent(0, []int{0, PCRDRTM}, MaskOf(0, 2), secret)
	if err != nil {
		t.Fatal(err)
	}
	wire := blob.Marshal()
	got, err := UnmarshalSealedBlob(wire)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := dev.Unseal(2, got)
	if err != nil {
		t.Fatalf("unseal after round trip: %v", err)
	}
	if !bytes.Equal(pt, secret) {
		t.Fatal("plaintext mismatch after round trip")
	}
	if _, err := UnmarshalSealedBlob(wire[:10]); err == nil {
		t.Fatal("truncated blob accepted")
	}
	if _, err := UnmarshalSealedBlob(append(wire, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestSealErrors(t *testing.T) {
	dev, _ := newTestTPM(t)
	if _, err := dev.Seal(0, nil, cryptoutil.Digest{}, 0, []byte("x")); !errors.Is(err, ErrEmptySelection) {
		t.Fatalf("empty selection: %v", err)
	}
	if _, err := dev.Seal(9, []int{0}, cryptoutil.Digest{}, 0, []byte("x")); !errors.Is(err, ErrBadLocality) {
		t.Fatalf("bad locality: %v", err)
	}
	if _, err := dev.Unseal(0, nil); err == nil {
		t.Fatal("nil blob accepted")
	}
	if _, err := dev.Unseal(8, &SealedBlob{}); !errors.Is(err, ErrBadLocality) {
		t.Fatalf("bad locality unseal: %v", err)
	}
}

func TestSealDefaultLocalityMask(t *testing.T) {
	dev, _ := newTestTPM(t)
	blob, err := dev.SealCurrent(0, []int{0}, 0, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if blob.Info.ReleaseLocalities != AllLocalities {
		t.Fatalf("zero mask not defaulted: %v", blob.Info.ReleaseLocalities)
	}
}

func TestSealUnsealRoundTripProperty(t *testing.T) {
	// Property: any payload round-trips through seal/marshal/unmarshal/
	// unseal when the PCR state is unchanged.
	dev, _ := newTestTPM(t)
	f := func(payload []byte) bool {
		blob, err := dev.SealCurrent(0, []int{0, 17}, AllLocalities, payload)
		if err != nil {
			return false
		}
		round, err := UnmarshalSealedBlob(blob.Marshal())
		if err != nil {
			return false
		}
		got, err := dev.Unseal(0, round)
		if err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSealEmptyPayload(t *testing.T) {
	dev, _ := newTestTPM(t)
	blob, err := dev.SealCurrent(0, []int{0}, AllLocalities, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dev.Unseal(0, blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("unsealed %d bytes from empty payload", len(got))
	}
}
