package tpm

import (
	"errors"
	"fmt"
	"sort"

	"unitp/internal/cryptoutil"
)

// quoteVersion is the TPM_STRUCT_VER prefix of TPM_QUOTE_INFO for v1.1/1.2.
var quoteVersion = [4]byte{0x01, 0x01, 0x00, 0x00}

// quoteFixed is the 4-byte fixed field of TPM_QUOTE_INFO.
var quoteFixed = [4]byte{'Q', 'U', 'O', 'T'}

// selectionBitmapSize is sizeOfSelect for a 24-PCR TPM (3 bytes).
const selectionBitmapSize = 3

// NormalizeSelection returns the selection sorted ascending with
// duplicates removed, validating every index. Quote and Seal normalize so
// that the composite digest is canonical regardless of caller ordering.
func NormalizeSelection(selection []int) ([]int, error) {
	if len(selection) == 0 {
		return nil, ErrEmptySelection
	}
	out := make([]int, len(selection))
	copy(out, selection)
	sort.Ints(out)
	dedup := out[:0]
	prev := -1
	for _, idx := range out {
		if !validPCR(idx) {
			return nil, ErrBadPCRIndex
		}
		if idx != prev {
			dedup = append(dedup, idx)
			prev = idx
		}
	}
	return dedup, nil
}

// selectionBitmap encodes a normalized selection as the TPM_PCR_SELECTION
// bitmap (bit i of byte i/8).
func selectionBitmap(selection []int) [selectionBitmapSize]byte {
	var bm [selectionBitmapSize]byte
	for _, idx := range selection {
		bm[idx/8] |= 1 << (idx % 8)
	}
	return bm
}

// SelectionFromBitmap decodes a TPM_PCR_SELECTION bitmap into a sorted
// index list.
func SelectionFromBitmap(bm [selectionBitmapSize]byte) []int {
	var out []int
	for i := 0; i < NumPCRs; i++ {
		if bm[i/8]&(1<<(i%8)) != 0 {
			out = append(out, i)
		}
	}
	return out
}

// ComputeComposite computes the SHA-1 digest of the TPM_PCR_COMPOSITE
// structure for the given (normalized or not) selection and the PCR values
// in selection order.
func ComputeComposite(selection []int, values []cryptoutil.Digest) (cryptoutil.Digest, error) {
	if len(selection) == 0 {
		return cryptoutil.Digest{}, ErrEmptySelection
	}
	if len(selection) != len(values) {
		return cryptoutil.Digest{}, fmt.Errorf("tpm: %d PCR values for %d selected", len(values), len(selection))
	}
	// Canonical order: sort (selection, values) pairs by index.
	type pair struct {
		idx int
		val cryptoutil.Digest
	}
	pairs := make([]pair, len(selection))
	for i := range selection {
		if !validPCR(selection[i]) {
			return cryptoutil.Digest{}, ErrBadPCRIndex
		}
		pairs[i] = pair{selection[i], values[i]}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].idx < pairs[j].idx })
	for i := 1; i < len(pairs); i++ {
		if pairs[i].idx == pairs[i-1].idx {
			return cryptoutil.Digest{}, fmt.Errorf("tpm: duplicate PCR %d in selection", pairs[i].idx)
		}
	}

	sorted := make([]int, len(pairs))
	b := cryptoutil.NewBuffer(2 + selectionBitmapSize + 4 + len(pairs)*cryptoutil.DigestSize)
	for i, p := range pairs {
		sorted[i] = p.idx
	}
	bm := selectionBitmap(sorted)
	b.PutUint16(selectionBitmapSize)
	b.PutRaw(bm[:])
	b.PutUint32(uint32(len(pairs) * cryptoutil.DigestSize))
	for _, p := range pairs {
		b.PutDigest(p.val)
	}
	return cryptoutil.SHA1(b.Bytes()), nil
}

// Quote is the result of TPM_Quote: the attested PCR composite, the
// caller-supplied external data (anti-replay nonce), the reported PCR
// values, and the AIK signature over TPM_QUOTE_INFO.
type Quote struct {
	// CompositeDigest is the SHA-1 of the TPM_PCR_COMPOSITE the TPM
	// observed.
	CompositeDigest cryptoutil.Digest

	// ExternalData is the 20-byte challenger nonce bound into the
	// signature.
	ExternalData [20]byte

	// Selection lists the quoted PCR indices in ascending order.
	Selection []int

	// PCRValues holds the quoted values in Selection order. They are
	// reported (not signed directly); verifiers recompute the composite
	// from them and compare against CompositeDigest.
	PCRValues []cryptoutil.Digest

	// Signature is the RSA-PKCS1v15-SHA1 signature over the serialized
	// TPM_QUOTE_INFO.
	Signature []byte
}

// quoteInfoBytes serializes the TPM_QUOTE_INFO structure that is signed.
func quoteInfoBytes(composite cryptoutil.Digest, externalData [20]byte) []byte {
	b := cryptoutil.NewBuffer(4 + 4 + cryptoutil.DigestSize + 20)
	b.PutRaw(quoteVersion[:])
	b.PutRaw(quoteFixed[:])
	b.PutDigest(composite)
	b.PutRaw(externalData[:])
	return b.Bytes()
}

// Marshal encodes the quote for wire transport.
func (q *Quote) Marshal() []byte {
	b := cryptoutil.NewBuffer(128 + len(q.PCRValues)*cryptoutil.DigestSize + len(q.Signature))
	b.PutDigest(q.CompositeDigest)
	b.PutRaw(q.ExternalData[:])
	bm := selectionBitmap(q.Selection)
	b.PutRaw(bm[:])
	b.PutUint32(uint32(len(q.PCRValues)))
	for _, v := range q.PCRValues {
		b.PutDigest(v)
	}
	b.PutBytes(q.Signature)
	return b.Bytes()
}

// UnmarshalQuote decodes a quote from wire bytes.
func UnmarshalQuote(data []byte) (*Quote, error) {
	r := cryptoutil.NewReader(data)
	var q Quote
	q.CompositeDigest = r.Digest()
	copy(q.ExternalData[:], r.Raw(20))
	var bm [selectionBitmapSize]byte
	copy(bm[:], r.Raw(selectionBitmapSize))
	n := r.Uint32()
	if r.Err() != nil {
		return nil, fmt.Errorf("tpm: unmarshal quote: %w", r.Err())
	}
	if n > NumPCRs {
		return nil, fmt.Errorf("tpm: quote reports %d PCR values", n)
	}
	q.Selection = SelectionFromBitmap(bm)
	if len(q.Selection) != int(n) {
		return nil, fmt.Errorf("tpm: quote bitmap selects %d PCRs but carries %d values", len(q.Selection), n)
	}
	q.PCRValues = make([]cryptoutil.Digest, n)
	for i := range q.PCRValues {
		q.PCRValues[i] = r.Digest()
	}
	q.Signature = r.Bytes()
	if err := r.ExpectEOF(); err != nil {
		return nil, fmt.Errorf("tpm: unmarshal quote: %w", err)
	}
	return &q, nil
}

// PCRValue returns the quoted value of the given PCR index.
func (q *Quote) PCRValue(idx int) (cryptoutil.Digest, bool) {
	for i, sel := range q.Selection {
		if sel == idx {
			return q.PCRValues[i], true
		}
	}
	return cryptoutil.Digest{}, false
}

// ErrQuoteInconsistent is returned when the reported PCR values do not
// hash to the signed composite digest.
var ErrQuoteInconsistent = errors.New("tpm: reported PCR values do not match signed composite")
