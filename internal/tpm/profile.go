package tpm

import "time"

// Op identifies a TPM command class for latency modelling and statistics.
type Op int

// Command classes. The set mirrors the commands this reproduction uses;
// each has a modelled latency in a vendor Profile.
const (
	OpStartup Op = iota + 1
	OpExtend
	OpPCRRead
	OpPCRReset
	OpQuote
	OpSeal
	OpUnseal
	OpGetRandom
	OpNVDefine
	OpNVRead
	OpNVWrite
	OpCounterCreate
	OpCounterIncrement
	OpCounterRead
	OpCreateKey
)

// opNames maps command classes to the names used in experiment tables.
var opNames = map[Op]string{
	OpStartup:          "Startup",
	OpExtend:           "Extend",
	OpPCRRead:          "PCRRead",
	OpPCRReset:         "PCRReset",
	OpQuote:            "Quote",
	OpSeal:             "Seal",
	OpUnseal:           "Unseal",
	OpGetRandom:        "GetRandom",
	OpNVDefine:         "NVDefine",
	OpNVRead:           "NVRead",
	OpNVWrite:          "NVWrite",
	OpCounterCreate:    "CounterCreate",
	OpCounterIncrement: "CounterIncrement",
	OpCounterRead:      "CounterRead",
	OpCreateKey:        "CreateKey",
}

// String returns the table name of the command class.
func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return "Unknown"
}

// Ops lists every command class in table order.
func Ops() []Op {
	return []Op{
		OpStartup, OpExtend, OpPCRRead, OpPCRReset, OpQuote, OpSeal,
		OpUnseal, OpGetRandom, OpNVDefine, OpNVRead, OpNVWrite,
		OpCounterCreate, OpCounterIncrement, OpCounterRead, OpCreateKey,
	}
}

// Profile models the command latencies of a discrete TPM v1.2 chip.
//
// The values below are era-plausible figures consistent with published
// measurements of 2008–2011 discrete TPMs (the Flicker and TrustVisor
// papers, and McCune's dissertation, report quote times of 330–970 ms and
// unseal times of 390–970 ms across vendors). The original paper's exact
// per-chip numbers are unavailable (see DESIGN.md source-text caveat); what
// the reproduction preserves is the *structure*: quote and unseal dominate,
// and vendor ordering carries through to end-to-end latency.
type Profile struct {
	// Name identifies the vendor/chip in experiment tables.
	Name string

	// Latency holds the fixed cost per command class. Missing classes
	// cost zero.
	Latency map[Op]time.Duration
}

// LatencyOf returns the modelled latency for op (zero if unspecified).
func (p Profile) LatencyOf(op Op) time.Duration {
	return p.Latency[op]
}

// ProfileIdeal is a zero-latency TPM used by functional tests, so that
// correctness tests run instantly and latency assertions are exact.
func ProfileIdeal() Profile {
	return Profile{Name: "Ideal", Latency: map[Op]time.Duration{}}
}

// ProfileBroadcom models a Broadcom BCM-class TPM v1.2: the slowest quote
// and unseal of the cohort.
func ProfileBroadcom() Profile {
	return Profile{
		Name: "Broadcom",
		Latency: map[Op]time.Duration{
			OpStartup:          25 * time.Millisecond,
			OpExtend:           20 * time.Millisecond,
			OpPCRRead:          1 * time.Millisecond,
			OpPCRReset:         2 * time.Millisecond,
			OpQuote:            972 * time.Millisecond,
			OpSeal:             390 * time.Millisecond,
			OpUnseal:           973 * time.Millisecond,
			OpGetRandom:        10 * time.Millisecond,
			OpNVDefine:         30 * time.Millisecond,
			OpNVRead:           14 * time.Millisecond,
			OpNVWrite:          28 * time.Millisecond,
			OpCounterCreate:    40 * time.Millisecond,
			OpCounterIncrement: 12 * time.Millisecond,
			OpCounterRead:      5 * time.Millisecond,
			OpCreateKey:        11 * time.Second,
		},
	}
}

// ProfileInfineon models an Infineon SLB-class TPM v1.2: the fastest quote
// of the cohort.
func ProfileInfineon() Profile {
	return Profile{
		Name: "Infineon",
		Latency: map[Op]time.Duration{
			OpStartup:          18 * time.Millisecond,
			OpExtend:           12 * time.Millisecond,
			OpPCRRead:          1 * time.Millisecond,
			OpPCRReset:         2 * time.Millisecond,
			OpQuote:            331 * time.Millisecond,
			OpSeal:             190 * time.Millisecond,
			OpUnseal:           390 * time.Millisecond,
			OpGetRandom:        8 * time.Millisecond,
			OpNVDefine:         22 * time.Millisecond,
			OpNVRead:           10 * time.Millisecond,
			OpNVWrite:          20 * time.Millisecond,
			OpCounterCreate:    35 * time.Millisecond,
			OpCounterIncrement: 9 * time.Millisecond,
			OpCounterRead:      4 * time.Millisecond,
			OpCreateKey:        8 * time.Second,
		},
	}
}

// ProfileSTM models an ST Microelectronics TPM v1.2.
func ProfileSTM() Profile {
	return Profile{
		Name: "STMicro",
		Latency: map[Op]time.Duration{
			OpStartup:          20 * time.Millisecond,
			OpExtend:           19 * time.Millisecond,
			OpPCRRead:          1 * time.Millisecond,
			OpPCRReset:         2 * time.Millisecond,
			OpQuote:            769 * time.Millisecond,
			OpSeal:             210 * time.Millisecond,
			OpUnseal:           555 * time.Millisecond,
			OpGetRandom:        9 * time.Millisecond,
			OpNVDefine:         25 * time.Millisecond,
			OpNVRead:           12 * time.Millisecond,
			OpNVWrite:          24 * time.Millisecond,
			OpCounterCreate:    38 * time.Millisecond,
			OpCounterIncrement: 11 * time.Millisecond,
			OpCounterRead:      5 * time.Millisecond,
			OpCreateKey:        9 * time.Second,
		},
	}
}

// ProfileAtmel models an Atmel TPM v1.2.
func ProfileAtmel() Profile {
	return Profile{
		Name: "Atmel",
		Latency: map[Op]time.Duration{
			OpStartup:          22 * time.Millisecond,
			OpExtend:           15 * time.Millisecond,
			OpPCRRead:          1 * time.Millisecond,
			OpPCRReset:         2 * time.Millisecond,
			OpQuote:            800 * time.Millisecond,
			OpSeal:             137 * time.Millisecond,
			OpUnseal:           760 * time.Millisecond,
			OpGetRandom:        9 * time.Millisecond,
			OpNVDefine:         26 * time.Millisecond,
			OpNVRead:           13 * time.Millisecond,
			OpNVWrite:          25 * time.Millisecond,
			OpCounterCreate:    39 * time.Millisecond,
			OpCounterIncrement: 10 * time.Millisecond,
			OpCounterRead:      5 * time.Millisecond,
			OpCreateKey:        10 * time.Second,
		},
	}
}

// VendorProfiles returns the four modelled discrete TPMs in table order
// (fastest quote first).
func VendorProfiles() []Profile {
	return []Profile{
		ProfileInfineon(),
		ProfileSTM(),
		ProfileAtmel(),
		ProfileBroadcom(),
	}
}

// OpStat aggregates executions of one command class.
type OpStat struct {
	// Count is the number of executions.
	Count int
	// Total is the summed modelled latency.
	Total time.Duration
}

// Mean returns the average latency per execution (zero if none).
func (s OpStat) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}
