package tpm

import (
	"crypto/aes"
	"crypto/cipher"
	"fmt"
	"io"

	"unitp/internal/cryptoutil"
)

// SealInfo is the release policy bound to a sealed blob, modelling
// TPM_PCR_INFO_LONG: the PCR selection, the composite digest those PCRs
// must have at release time, and the localities allowed to unseal.
type SealInfo struct {
	// Selection lists the PCR indices the policy covers (normalized).
	Selection []int

	// ReleaseComposite is the composite digest the selected PCRs must
	// match at unseal time.
	ReleaseComposite cryptoutil.Digest

	// ReleaseLocalities is the set of localities allowed to unseal.
	ReleaseLocalities LocalityMask
}

// marshal serializes the policy; it doubles as the additional
// authenticated data of the blob so the policy cannot be stripped or
// swapped.
func (si SealInfo) marshal() []byte {
	b := cryptoutil.NewBuffer(8 + selectionBitmapSize + cryptoutil.DigestSize)
	bm := selectionBitmap(si.Selection)
	b.PutRaw(bm[:])
	b.PutDigest(si.ReleaseComposite)
	b.PutUint8(uint8(si.ReleaseLocalities))
	return b.Bytes()
}

func unmarshalSealInfo(r *cryptoutil.Reader) (SealInfo, error) {
	var si SealInfo
	var bm [selectionBitmapSize]byte
	copy(bm[:], r.Raw(selectionBitmapSize))
	si.ReleaseComposite = r.Digest()
	si.ReleaseLocalities = LocalityMask(r.Uint8())
	if r.Err() != nil {
		return SealInfo{}, fmt.Errorf("tpm: unmarshal seal info: %w", r.Err())
	}
	si.Selection = SelectionFromBitmap(bm)
	return si, nil
}

// SealedBlob is data sealed to a PCR state. The plaintext is encrypted
// with an authenticated cipher under the device's storage root key, with
// the release policy as authenticated data — only this TPM can unseal,
// and only when the policy is satisfied.
//
// Fidelity note: a hardware TPM v1.2 wraps sealed data with the RSA
// storage root key; this model uses AES-256-GCM under a device-internal
// key, which preserves the two properties the protocol relies on
// (device-binding and policy-binding) while remaining size-flexible.
type SealedBlob struct {
	// Info is the release policy (authenticated, not secret).
	Info SealInfo

	// Nonce is the GCM nonce.
	Nonce []byte

	// Ciphertext is the encrypted and authenticated payload.
	Ciphertext []byte
}

// Marshal encodes the blob for storage by the (untrusted) OS.
func (sb *SealedBlob) Marshal() []byte {
	info := sb.Info.marshal()
	b := cryptoutil.NewBuffer(len(info) + len(sb.Nonce) + len(sb.Ciphertext) + 16)
	b.PutRaw(info)
	b.PutBytes(sb.Nonce)
	b.PutBytes(sb.Ciphertext)
	return b.Bytes()
}

// UnmarshalSealedBlob decodes a blob produced by Marshal.
func UnmarshalSealedBlob(data []byte) (*SealedBlob, error) {
	r := cryptoutil.NewReader(data)
	info, err := unmarshalSealInfo(r)
	if err != nil {
		return nil, err
	}
	var sb SealedBlob
	sb.Info = info
	sb.Nonce = r.Bytes()
	sb.Ciphertext = r.Bytes()
	if err := r.ExpectEOF(); err != nil {
		return nil, fmt.Errorf("tpm: unmarshal sealed blob: %w", err)
	}
	return &sb, nil
}

// gcm constructs the AEAD over the device SRK. Must be called with t.mu
// held (the key never changes, but keeping the discipline uniform).
func (t *TPM) gcm() (cipher.AEAD, error) {
	block, err := aes.NewCipher(t.srk[:])
	if err != nil {
		return nil, fmt.Errorf("tpm: srk cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("tpm: srk gcm: %w", err)
	}
	return aead, nil
}

// Seal encrypts data under the device storage key, bound to the given
// release policy. releaseComposite is the composite digest the selected
// PCRs must show at unseal time (commonly the *current* composite — use
// CurrentComposite — or a pre-computed future state, which is how a
// provider seals a secret to a PAL that has not run yet).
func (t *TPM) Seal(loc Locality, selection []int, releaseComposite cryptoutil.Digest, releaseLocalities LocalityMask, data []byte) (*SealedBlob, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.started {
		return nil, ErrNotStarted
	}
	if !validLocality(loc) {
		return nil, ErrBadLocality
	}
	sel, err := NormalizeSelection(selection)
	if err != nil {
		return nil, err
	}
	if releaseLocalities == 0 {
		releaseLocalities = AllLocalities
	}
	t.charge(OpSeal)

	info := SealInfo{
		Selection:         sel,
		ReleaseComposite:  releaseComposite,
		ReleaseLocalities: releaseLocalities,
	}
	aead, err := t.gcm()
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := io.ReadFull(t.random, nonce); err != nil {
		return nil, fmt.Errorf("tpm: seal nonce: %w", err)
	}
	ct := aead.Seal(nil, nonce, data, info.marshal())
	return &SealedBlob{Info: info, Nonce: nonce, Ciphertext: ct}, nil
}

// SealCurrent seals data to the *current* values of the selected PCRs.
func (t *TPM) SealCurrent(loc Locality, selection []int, releaseLocalities LocalityMask, data []byte) (*SealedBlob, error) {
	composite, err := t.CurrentComposite(selection)
	if err != nil {
		return nil, err
	}
	return t.Seal(loc, selection, composite, releaseLocalities, data)
}

// Unseal decrypts a sealed blob, succeeding only if the current values of
// the policy's PCRs hash to the release composite and the caller's
// locality is permitted. A blob sealed to the measured state of a PAL is
// therefore unreadable by the OS and by any *different* PAL.
func (t *TPM) Unseal(loc Locality, blob *SealedBlob) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.started {
		return nil, ErrNotStarted
	}
	if blob == nil {
		return nil, fmt.Errorf("tpm: unseal: nil blob")
	}
	if !validLocality(loc) {
		return nil, ErrBadLocality
	}
	t.charge(OpUnseal)

	if !blob.Info.ReleaseLocalities.Contains(loc) {
		return nil, ErrBadLocality
	}
	current, err := t.compositeLocked(blob.Info.Selection)
	if err != nil {
		return nil, err
	}
	if current != blob.Info.ReleaseComposite {
		return nil, ErrWrongPCRState
	}
	aead, err := t.gcm()
	if err != nil {
		return nil, err
	}
	pt, err := aead.Open(nil, blob.Nonce, blob.Ciphertext, blob.Info.marshal())
	if err != nil {
		return nil, ErrSealedBlobCorrupt
	}
	return pt, nil
}
