package tpm

import (
	"errors"
	"testing"
	"time"

	"unitp/internal/cryptoutil"
	"unitp/internal/sim"
)

// newTestTPM returns a started zero-latency TPM with deterministic
// entropy, plus its virtual clock.
func newTestTPM(t *testing.T) (*TPM, *sim.VirtualClock) {
	t.Helper()
	clock := sim.NewVirtualClock()
	dev, err := New(Config{
		Clock:  clock,
		Random: sim.NewRand(0x54504d), // "TPM"
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := dev.Startup(); err != nil {
		t.Fatalf("Startup: %v", err)
	}
	return dev, clock
}

func TestCommandsBeforeStartupFail(t *testing.T) {
	dev, err := New(Config{Random: sim.NewRand(1)})
	if err != nil {
		t.Fatal(err)
	}
	m := cryptoutil.SHA1([]byte("m"))
	if _, err := dev.Extend(0, 0, m); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("Extend before startup: %v", err)
	}
	if _, err := dev.PCRRead(0); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("PCRRead before startup: %v", err)
	}
	if _, err := dev.GetRandom(8); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("GetRandom before startup: %v", err)
	}
	if _, _, err := dev.CreateAIK(); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("CreateAIK before startup: %v", err)
	}
	if err := dev.PCRReset(4, PCRDRTM); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("PCRReset before startup: %v", err)
	}
	if dev.Started() {
		t.Fatal("Started() true before Startup")
	}
}

func TestStartupValues(t *testing.T) {
	dev, _ := newTestTPM(t)
	for i := 0; i <= 16; i++ {
		v, err := dev.PCRRead(i)
		if err != nil {
			t.Fatalf("PCRRead(%d): %v", i, err)
		}
		if !v.IsZero() {
			t.Fatalf("static PCR %d not zero at startup: %v", i, v)
		}
	}
	for _, i := range DynamicPCRs() {
		v, err := dev.PCRRead(i)
		if err != nil {
			t.Fatalf("PCRRead(%d): %v", i, err)
		}
		if !v.IsOnes() {
			t.Fatalf("dynamic PCR %d not all-ones at startup: %v", i, v)
		}
	}
	v, err := dev.PCRRead(PCRApp)
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsZero() {
		t.Fatalf("application PCR not zero at startup: %v", v)
	}
}

func TestGetRandomDistinct(t *testing.T) {
	dev, _ := newTestTPM(t)
	a, err := dev.GetRandom(16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dev.GetRandom(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	if string(a) == string(b) {
		t.Fatal("consecutive GetRandom outputs identical")
	}
}

func TestCreateAIKDistinctHandlesAndKeys(t *testing.T) {
	dev, _ := newTestTPM(t)
	h1, pub1, err := dev.CreateAIK()
	if err != nil {
		t.Fatal(err)
	}
	h2, pub2, err := dev.CreateAIK()
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 {
		t.Fatal("AIK handles collide")
	}
	if pub1.N.Cmp(pub2.N) == 0 {
		t.Fatal("AIK moduli collide")
	}
}

func TestEKStable(t *testing.T) {
	dev, _ := newTestTPM(t)
	if dev.EK() == nil {
		t.Fatal("nil EK")
	}
	if dev.EK().N.Cmp(dev.EK().N) != 0 {
		t.Fatal("EK changed between calls")
	}
}

func TestLatencyCharging(t *testing.T) {
	clock := sim.NewVirtualClock()
	dev, err := New(Config{
		Profile: ProfileInfineon(),
		Clock:   clock,
		Random:  sim.NewRand(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Startup(); err != nil {
		t.Fatal(err)
	}
	before := clock.Elapsed()
	m := cryptoutil.SHA1([]byte("m"))
	if _, err := dev.Extend(0, 0, m); err != nil {
		t.Fatal(err)
	}
	got := clock.Elapsed() - before
	if want := ProfileInfineon().LatencyOf(OpExtend); got != want {
		t.Fatalf("Extend charged %v, want %v", got, want)
	}
}

func TestStatsAccumulateAndReset(t *testing.T) {
	clock := sim.NewVirtualClock()
	dev, err := New(Config{Profile: ProfileAtmel(), Clock: clock, Random: sim.NewRand(3)})
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Startup(); err != nil {
		t.Fatal(err)
	}
	m := cryptoutil.SHA1([]byte("m"))
	for i := 0; i < 3; i++ {
		if _, err := dev.Extend(0, 1, m); err != nil {
			t.Fatal(err)
		}
	}
	st := dev.Stats()[OpExtend]
	if st.Count != 3 {
		t.Fatalf("Extend count = %d, want 3", st.Count)
	}
	if want := 3 * ProfileAtmel().LatencyOf(OpExtend); st.Total != want {
		t.Fatalf("Extend total = %v, want %v", st.Total, want)
	}
	if st.Mean() != ProfileAtmel().LatencyOf(OpExtend) {
		t.Fatalf("Extend mean = %v", st.Mean())
	}
	dev.ResetStats()
	if len(dev.Stats()) != 0 {
		t.Fatal("stats not cleared")
	}
}

func TestOpStatMeanZeroCount(t *testing.T) {
	var s OpStat
	if s.Mean() != 0 {
		t.Fatal("mean of empty stat not zero")
	}
}

func TestOpStringNames(t *testing.T) {
	for _, op := range Ops() {
		if op.String() == "Unknown" {
			t.Fatalf("op %d has no name", op)
		}
	}
	if Op(999).String() != "Unknown" {
		t.Fatal("unknown op not reported as Unknown")
	}
}

func TestVendorProfilesShape(t *testing.T) {
	profiles := VendorProfiles()
	if len(profiles) != 4 {
		t.Fatalf("got %d vendor profiles, want 4", len(profiles))
	}
	for _, p := range profiles {
		if p.Name == "" {
			t.Fatal("unnamed profile")
		}
		quote := p.LatencyOf(OpQuote)
		if quote < 100*time.Millisecond {
			t.Fatalf("%s quote latency %v implausibly low for era hardware", p.Name, quote)
		}
		// The paper's practicality analysis leans on quote/unseal
		// dominating extend by orders of magnitude.
		if quote < 10*p.LatencyOf(OpExtend) {
			t.Fatalf("%s: quote (%v) does not dominate extend (%v)", p.Name, quote, p.LatencyOf(OpExtend))
		}
	}
	if ideal := ProfileIdeal(); ideal.LatencyOf(OpQuote) != 0 {
		t.Fatal("ideal profile has nonzero latency")
	}
}

func TestLocalityMask(t *testing.T) {
	m := MaskOf(0, 2, 4)
	for _, tc := range []struct {
		loc  Locality
		want bool
	}{{0, true}, {1, false}, {2, true}, {3, false}, {4, true}, {5, false}} {
		if got := m.Contains(tc.loc); got != tc.want {
			t.Fatalf("Contains(%d) = %v, want %v", tc.loc, got, tc.want)
		}
	}
	if !AllLocalities.Contains(0) || !AllLocalities.Contains(4) {
		t.Fatal("AllLocalities missing endpoints")
	}
}
