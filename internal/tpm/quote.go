package tpm

import (
	"crypto"
	"crypto/rsa"
	"fmt"
	"io"

	"unitp/internal/cryptoutil"
)

// Quote performs TPM_Quote: it signs, with the AIK named by handle, the
// composite digest of the selected PCRs together with the 20 bytes of
// externalData (the challenger's anti-replay nonce).
//
// Quotes may be requested from any locality — the security of the trusted
// path comes from *what the PCRs contain*, not from who asks for the
// quote, which is exactly why the protocol works with a compromised OS
// issuing the command after the PAL has exited.
func (t *TPM) Quote(loc Locality, handle Handle, externalData []byte, selection []int) (*Quote, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.started {
		return nil, ErrNotStarted
	}
	if !validLocality(loc) {
		return nil, ErrBadLocality
	}
	if len(externalData) != 20 {
		return nil, ErrBadNonce
	}
	key, ok := t.aiks[handle]
	if !ok {
		return nil, ErrUnknownHandle
	}
	sel, err := NormalizeSelection(selection)
	if err != nil {
		return nil, err
	}
	t.charge(OpQuote)

	values := make([]cryptoutil.Digest, len(sel))
	for i, idx := range sel {
		values[i] = t.pcrs[idx]
	}
	composite, err := ComputeComposite(sel, values)
	if err != nil {
		return nil, err
	}
	var ext [20]byte
	copy(ext[:], externalData)
	sig, err := t.signSHA1(key, quoteInfoBytes(composite, ext))
	if err != nil {
		return nil, err
	}
	return &Quote{
		CompositeDigest: composite,
		ExternalData:    ext,
		Selection:       sel,
		PCRValues:       values,
		Signature:       sig,
	}, nil
}

// SignQuote builds and signs a quote directly from a key and explicit
// PCR values, without a TPM instance. Load generators and benchmark
// harnesses use it to mint valid evidence for platforms that exist only
// as key material — the output is indistinguishable from TPM.Quote over
// the same state. A nil random is allowed (PKCS#1 v1.5 signing is
// deterministic).
func SignQuote(random io.Reader, key *rsa.PrivateKey, externalData [20]byte, selection []int, values []cryptoutil.Digest) (*Quote, error) {
	sel, err := NormalizeSelection(selection)
	if err != nil {
		return nil, err
	}
	if len(values) != len(sel) {
		return nil, fmt.Errorf("tpm: sign quote: %d values for %d selected PCRs", len(values), len(sel))
	}
	composite, err := ComputeComposite(sel, values)
	if err != nil {
		return nil, err
	}
	digest := cryptoutil.SHA1(quoteInfoBytes(composite, externalData))
	sig, err := rsa.SignPKCS1v15(random, key, crypto.SHA1, digest[:])
	if err != nil {
		return nil, fmt.Errorf("tpm: sign quote: %w", err)
	}
	vals := make([]cryptoutil.Digest, len(values))
	copy(vals, values)
	return &Quote{
		CompositeDigest: composite,
		ExternalData:    externalData,
		Selection:       sel,
		PCRValues:       vals,
		Signature:       sig,
	}, nil
}

// SignQuoteScheme is SignQuote for an arbitrary crypto profile: the
// signer's scheme decides the signature algorithm while the
// TPM_QUOTE_INFO message, composite computation, and wire layout stay
// identical (the signature field is opaque bytes). An RSA scheme signer
// produces byte-identical output to SignQuote over the same key and
// state.
func SignQuoteScheme(random io.Reader, signer cryptoutil.Signer, externalData [20]byte, selection []int, values []cryptoutil.Digest) (*Quote, error) {
	sel, err := NormalizeSelection(selection)
	if err != nil {
		return nil, err
	}
	if len(values) != len(sel) {
		return nil, fmt.Errorf("tpm: sign quote: %d values for %d selected PCRs", len(values), len(sel))
	}
	composite, err := ComputeComposite(sel, values)
	if err != nil {
		return nil, err
	}
	sig, err := signer.Sign(random, quoteInfoBytes(composite, externalData))
	if err != nil {
		return nil, fmt.Errorf("tpm: sign quote: %w", err)
	}
	vals := make([]cryptoutil.Digest, len(values))
	copy(vals, values)
	return &Quote{
		CompositeDigest: composite,
		ExternalData:    externalData,
		Selection:       sel,
		PCRValues:       vals,
		Signature:       sig,
	}, nil
}

// QuoteMessage recomputes the composite from the reported PCR values,
// checks it against the signed composite, and returns the serialized
// TPM_QUOTE_INFO the signature covers. Callers that route signature
// checks elsewhere (scheme dispatch, cohort batch verification) use
// this to split "is the quote internally consistent" from "does the
// signature verify".
func QuoteMessage(q *Quote) ([]byte, error) {
	if q == nil {
		return nil, fmt.Errorf("tpm: quote message: nil quote")
	}
	recomputed, err := ComputeComposite(q.Selection, q.PCRValues)
	if err != nil {
		return nil, fmt.Errorf("tpm: quote message: %w", err)
	}
	if recomputed != q.CompositeDigest {
		return nil, ErrQuoteInconsistent
	}
	return quoteInfoBytes(q.CompositeDigest, q.ExternalData), nil
}

// VerifyQuoteScheme checks a quote under an arbitrary crypto profile:
// composite consistency exactly as VerifyQuote, then the signature
// under the scheme-encoded public key.
func VerifyQuoteScheme(scheme cryptoutil.Scheme, pub []byte, q *Quote) error {
	if scheme == nil || q == nil {
		return fmt.Errorf("tpm: verify quote: nil argument")
	}
	msg, err := QuoteMessage(q)
	if err != nil {
		return err
	}
	if err := scheme.Verify(pub, msg, q.Signature); err != nil {
		return fmt.Errorf("tpm: verify quote signature: %w", err)
	}
	return nil
}

// VerifyQuote checks a quote against an AIK public key: the reported PCR
// values must hash to the signed composite, and the signature over
// TPM_QUOTE_INFO must verify. It does not judge whether the PCR values
// themselves are trustworthy — that is attestation policy (package
// attest).
func VerifyQuote(pub *rsa.PublicKey, q *Quote) error {
	if pub == nil || q == nil {
		return fmt.Errorf("tpm: verify quote: nil argument")
	}
	recomputed, err := ComputeComposite(q.Selection, q.PCRValues)
	if err != nil {
		return fmt.Errorf("tpm: verify quote: %w", err)
	}
	if recomputed != q.CompositeDigest {
		return ErrQuoteInconsistent
	}
	digest := cryptoutil.SHA1(quoteInfoBytes(q.CompositeDigest, q.ExternalData))
	if err := rsa.VerifyPKCS1v15(pub, crypto.SHA1, digest[:], q.Signature); err != nil {
		return fmt.Errorf("tpm: verify quote signature: %w", err)
	}
	return nil
}
