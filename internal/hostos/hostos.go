// Package hostos models the commodity operating system of the paper's
// threat model: a software stack that mediates all of the user's input
// and output and all network traffic, and that must be assumed
// compromised. Malware installed here can log keystrokes, inject fake
// input, rewrite outbound protocol messages, and autonomously generate
// transactions — everything the uni-directional trusted path is designed
// to make detectable.
package hostos

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"unitp/internal/platform"
)

// ErrNoFocus is returned when input is read with no focused application.
var ErrNoFocus = errors.New("hostos: no focused application")

// OS is the commodity operating system instance on one machine.
type OS struct {
	mu           sync.Mutex
	machine      *platform.Machine
	apps         map[string]*App
	focus        *App
	malware      []Malware
	interceptors []MessageInterceptor
	inbound      []MessageInterceptor
}

// New boots the OS on a machine. The OS immediately claims the keyboard
// routing (it owns the devices whenever no PAL session is active).
func New(machine *platform.Machine) *OS {
	return &OS{
		machine: machine,
		apps:    make(map[string]*App),
	}
}

// Machine returns the underlying platform.
func (o *OS) Machine() *platform.Machine { return o.machine }

// App is a userspace application (e.g. the banking client) receiving
// OS-routed input.
type App struct {
	// Name identifies the app.
	Name string

	os    *OS
	input []rune
}

// RunApp starts (or returns) an application and focuses it.
func (o *OS) RunApp(name string) *App {
	o.mu.Lock()
	defer o.mu.Unlock()
	app, ok := o.apps[name]
	if !ok {
		app = &App{Name: name, os: o}
		o.apps[name] = app
	}
	o.focus = app
	return app
}

// Focused returns the currently focused application (nil if none).
func (o *OS) Focused() *App {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.focus
}

// PumpInput drains pending keyboard events through the OS driver stack
// into the focused application. It returns the number of events routed.
// While a PAL session owns the keyboard, the OS sees nothing and the call
// routes zero events.
func (o *OS) PumpInput() int {
	o.mu.Lock()
	focus := o.focus
	o.mu.Unlock()
	n := 0
	for {
		ev, err := o.machine.Keyboard().Read(platform.OwnerOS)
		if err != nil {
			return n
		}
		n++
		if focus != nil {
			o.mu.Lock()
			focus.input = append(focus.input, ev.Rune)
			o.mu.Unlock()
		}
	}
}

// ReadLine pumps input and returns the next newline-terminated line typed
// into the app, or what has accumulated so far with ok=false if no
// newline arrived yet.
func (a *App) ReadLine() (string, bool) {
	a.os.PumpInput()
	a.os.mu.Lock()
	defer a.os.mu.Unlock()
	for i, r := range a.input {
		if r == '\n' {
			line := string(a.input[:i])
			a.input = a.input[i+1:]
			return line, true
		}
	}
	return string(a.input), false
}

// TypeString is a test/demo convenience: the human types a whole string
// (plus newline) on the physical keyboard.
func (o *OS) TypeString(s string) {
	for _, r := range s {
		o.machine.Keyboard().Press(r)
	}
	o.machine.Keyboard().Press('\n')
}

// Malware is software installed on the compromised OS.
type Malware interface {
	// Name identifies the strain in experiment tables.
	Name() string

	// Infect installs the malware's hooks into the OS.
	Infect(host *OS) error
}

// Install registers and activates a piece of malware.
func (o *OS) Install(m Malware) error {
	if err := m.Infect(o); err != nil {
		return fmt.Errorf("hostos: install %s: %w", m.Name(), err)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.malware = append(o.malware, m)
	return nil
}

// InstalledMalware lists active malware names.
func (o *OS) InstalledMalware() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	names := make([]string, 0, len(o.malware))
	for _, m := range o.malware {
		names = append(names, m.Name())
	}
	return names
}

// MessageInterceptor rewrites (or observes) an outbound protocol message.
// Returning the input unchanged is a pure wiretap; returning different
// bytes is a man-in-the-middle rewrite.
type MessageInterceptor func(payload []byte) []byte

// AddInterceptor installs an outbound message interceptor. Interceptors
// run in installation order on every message sent through FilterOutbound.
func (o *OS) AddInterceptor(i MessageInterceptor) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.interceptors = append(o.interceptors, i)
}

// FilterOutbound runs an outbound payload through all installed
// interceptors, modelling malware's position on the network path. The
// client engine passes every protocol message through here before it
// reaches the wire.
func (o *OS) FilterOutbound(payload []byte) []byte {
	o.mu.Lock()
	interceptors := append([]MessageInterceptor{}, o.interceptors...)
	o.mu.Unlock()
	for _, f := range interceptors {
		payload = f(payload)
	}
	return payload
}

// AddInboundInterceptor installs an interceptor on the receive path —
// malware rewriting what the provider's responses *look like* to local
// software (e.g. showing the user the transaction they expect while the
// provider holds a manipulated one).
func (o *OS) AddInboundInterceptor(i MessageInterceptor) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.inbound = append(o.inbound, i)
}

// FilterInbound runs a received payload through all inbound interceptors.
func (o *OS) FilterInbound(payload []byte) []byte {
	o.mu.Lock()
	interceptors := append([]MessageInterceptor{}, o.inbound...)
	o.mu.Unlock()
	for _, f := range interceptors {
		payload = f(payload)
	}
	return payload
}

// Keylogger records every keystroke visible to the OS driver stack.
type Keylogger struct {
	mu       sync.Mutex
	captured []rune
}

// NewKeylogger returns an inactive keylogger; Install it on an OS to arm
// it.
func NewKeylogger() *Keylogger { return &Keylogger{} }

// Name implements Malware.
func (k *Keylogger) Name() string { return "keylogger" }

// Infect implements Malware by hooking the keyboard observer chain.
func (k *Keylogger) Infect(host *OS) error {
	host.Machine().Keyboard().Observe(func(ev platform.KeyEvent) {
		k.mu.Lock()
		defer k.mu.Unlock()
		k.captured = append(k.captured, ev.Rune)
	})
	return nil
}

// Captured returns everything the keylogger has seen.
func (k *Keylogger) Captured() string {
	k.mu.Lock()
	defer k.mu.Unlock()
	return string(k.captured)
}

// InputInjector fabricates keystrokes through the OS driver stack — the
// tool a transaction generator uses to "confirm" its own forged
// transactions in a UI-level confirmation scheme.
type InputInjector struct {
	host *OS
}

// NewInputInjector returns an inactive injector.
func NewInputInjector() *InputInjector { return &InputInjector{} }

// Name implements Malware.
func (i *InputInjector) Name() string { return "input-injector" }

// Infect implements Malware.
func (i *InputInjector) Infect(host *OS) error {
	i.host = host
	return nil
}

// Type injects a string of fake keystrokes. It fails (per keystroke
// short-circuit) while a PAL session owns the keyboard.
func (i *InputInjector) Type(s string) error {
	if i.host == nil {
		return errors.New("hostos: injector not installed")
	}
	for _, r := range s {
		if err := i.host.Machine().Keyboard().InjectAsOS(r); err != nil {
			return fmt.Errorf("hostos: inject %q: %w", r, err)
		}
	}
	return nil
}

// DisplayPhisher draws a pixel-perfect fake of the trusted confirmation
// UI while the OS owns the display — demonstrating the paper's explicit
// caveat that the *output* direction is not authenticated (hence
// "uni-directional"). The human cannot distinguish the fake; the service
// provider, however, never receives a valid confirmation for it.
type DisplayPhisher struct {
	host *OS
}

// NewDisplayPhisher returns an inactive phisher.
func NewDisplayPhisher() *DisplayPhisher { return &DisplayPhisher{} }

// Name implements Malware.
func (p *DisplayPhisher) Name() string { return "display-phisher" }

// Infect implements Malware.
func (p *DisplayPhisher) Infect(host *OS) error {
	p.host = host
	return nil
}

// DrawFakePrompt renders a counterfeit confirmation dialog. It succeeds
// only while the OS owns the display (i.e. outside PAL sessions).
func (p *DisplayPhisher) DrawFakePrompt(transaction string) error {
	if p.host == nil {
		return errors.New("hostos: phisher not installed")
	}
	text := "CONFIRM: " + strings.TrimSpace(transaction) + " [y/n]"
	return p.host.Machine().Display().Write(platform.OwnerOS, text)
}
