package hostos

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"unitp/internal/platform"
	"unitp/internal/sim"
)

func newTestOS(t *testing.T) *OS {
	t.Helper()
	m, err := platform.New(platform.Config{Random: sim.NewRand(5)})
	if err != nil {
		t.Fatal(err)
	}
	return New(m)
}

func TestAppInputRouting(t *testing.T) {
	os := newTestOS(t)
	app := os.RunApp("banking")
	os.TypeString("transfer 100")
	line, ok := app.ReadLine()
	if !ok {
		t.Fatalf("no complete line; got %q", line)
	}
	if line != "transfer 100" {
		t.Fatalf("line = %q", line)
	}
	// Partial input: no newline yet.
	os.Machine().Keyboard().Press('h')
	os.Machine().Keyboard().Press('i')
	partial, ok := app.ReadLine()
	if ok {
		t.Fatalf("partial input returned complete line %q", partial)
	}
	if partial != "hi" {
		t.Fatalf("partial = %q", partial)
	}
}

func TestRunAppFocusesAndReuses(t *testing.T) {
	os := newTestOS(t)
	a := os.RunApp("a")
	if os.Focused() != a {
		t.Fatal("app not focused")
	}
	b := os.RunApp("b")
	if os.Focused() != b {
		t.Fatal("focus did not move")
	}
	if os.RunApp("a") != a {
		t.Fatal("RunApp did not reuse existing app")
	}
}

func TestPumpInputWithNoFocus(t *testing.T) {
	os := newTestOS(t)
	os.Machine().Keyboard().Press('x')
	if n := os.PumpInput(); n != 1 {
		t.Fatalf("pumped %d", n)
	}
}

func TestKeyloggerCapturesOSInput(t *testing.T) {
	os := newTestOS(t)
	kl := NewKeylogger()
	if err := os.Install(kl); err != nil {
		t.Fatal(err)
	}
	os.RunApp("banking")
	os.TypeString("pin 1234")
	if got := kl.Captured(); got != "pin 1234\n" {
		t.Fatalf("keylogger captured %q", got)
	}
	if names := os.InstalledMalware(); len(names) != 1 || names[0] != "keylogger" {
		t.Fatalf("installed = %v", names)
	}
}

func TestKeyloggerBlindDuringPALSession(t *testing.T) {
	os := newTestOS(t)
	kl := NewKeylogger()
	if err := os.Install(kl); err != nil {
		t.Fatal(err)
	}
	_, err := os.Machine().LateLaunch([]byte("pal"), func(env *platform.LaunchEnv) error {
		os.Machine().Keyboard().Press('y')
		_, err := env.ReadKey()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := kl.Captured(); got != "" {
		t.Fatalf("keylogger captured %q during exclusive session", got)
	}
}

func TestInputInjector(t *testing.T) {
	os := newTestOS(t)
	inj := NewInputInjector()
	if err := inj.Type("y"); err == nil {
		t.Fatal("uninstalled injector typed")
	}
	if err := os.Install(inj); err != nil {
		t.Fatal(err)
	}
	app := os.RunApp("banking")
	if err := inj.Type("y\n"); err != nil {
		t.Fatal(err)
	}
	line, ok := app.ReadLine()
	if !ok || line != "y" {
		t.Fatalf("app received %q, %v", line, ok)
	}
}

func TestInjectorBlockedDuringPALSession(t *testing.T) {
	os := newTestOS(t)
	inj := NewInputInjector()
	if err := os.Install(inj); err != nil {
		t.Fatal(err)
	}
	_, err := os.Machine().LateLaunch([]byte("pal"), func(*platform.LaunchEnv) error {
		if err := inj.Type("y"); !errors.Is(err, platform.ErrDeviceNotOwned) {
			t.Fatalf("injection during session: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOutboundInterceptorRewrites(t *testing.T) {
	os := newTestOS(t)
	// Malware rewrites the payee in outbound transactions.
	os.AddInterceptor(func(p []byte) []byte {
		return bytes.ReplaceAll(p, []byte("alice"), []byte("mallory"))
	})
	got := os.FilterOutbound([]byte("pay alice 100"))
	if string(got) != "pay mallory 100" {
		t.Fatalf("FilterOutbound = %q", got)
	}
	// No interceptors case.
	clean := newTestOS(t)
	if string(clean.FilterOutbound([]byte("x"))) != "x" {
		t.Fatal("clean OS modified payload")
	}
}

func TestInterceptorsChainInOrder(t *testing.T) {
	os := newTestOS(t)
	os.AddInterceptor(func(p []byte) []byte { return append(p, 'A') })
	os.AddInterceptor(func(p []byte) []byte { return append(p, 'B') })
	if got := os.FilterOutbound([]byte("x")); string(got) != "xAB" {
		t.Fatalf("chained = %q", got)
	}
}

func TestDisplayPhisher(t *testing.T) {
	os := newTestOS(t)
	ph := NewDisplayPhisher()
	if err := ph.DrawFakePrompt("x"); err == nil {
		t.Fatal("uninstalled phisher drew")
	}
	if err := os.Install(ph); err != nil {
		t.Fatal(err)
	}
	if err := ph.DrawFakePrompt("pay mallory 9999"); err != nil {
		t.Fatal(err)
	}
	lines := os.Machine().Display().Lines()
	if len(lines) != 1 {
		t.Fatalf("lines = %d", len(lines))
	}
	// The fake is drawn by the OS — invisible to the human, but tagged
	// in the model.
	if lines[0].By != platform.OwnerOS {
		t.Fatal("phished line not tagged as OS-drawn")
	}
	if !strings.Contains(lines[0].Text, "mallory") {
		t.Fatalf("fake prompt = %q", lines[0].Text)
	}
}

func TestPhisherBlockedDuringPALSession(t *testing.T) {
	os := newTestOS(t)
	ph := NewDisplayPhisher()
	if err := os.Install(ph); err != nil {
		t.Fatal(err)
	}
	_, err := os.Machine().LateLaunch([]byte("pal"), func(*platform.LaunchEnv) error {
		if err := ph.DrawFakePrompt("x"); !errors.Is(err, platform.ErrDeviceNotOwned) {
			t.Fatalf("phishing during exclusive session: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
