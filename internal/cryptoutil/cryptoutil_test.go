package cryptoutil

import (
	"bytes"
	"crypto/sha1"
	"testing"
	"testing/quick"
)

func TestSHA1MatchesStdlib(t *testing.T) {
	data := []byte("uni-directional trusted path")
	want := sha1.Sum(data)
	if got := SHA1(data); got != Digest(want) {
		t.Fatalf("SHA1 = %x, want %x", got, want)
	}
}

func TestSHA1ConcatEqualsSingleShot(t *testing.T) {
	a, b, c := []byte("one"), []byte("two"), []byte("three")
	joined := append(append(append([]byte{}, a...), b...), c...)
	if SHA1Concat(a, b, c) != SHA1(joined) {
		t.Fatal("SHA1Concat differs from SHA1 of concatenation")
	}
}

func TestExtendDigestMatchesSpec(t *testing.T) {
	old := SHA1([]byte("pcr"))
	m := SHA1([]byte("measurement"))
	want := SHA1(append(append([]byte{}, old[:]...), m[:]...))
	if got := ExtendDigest(old, m); got != want {
		t.Fatalf("ExtendDigest = %x, want %x", got, want)
	}
}

func TestExtendDigestOrderMatters(t *testing.T) {
	a := SHA1([]byte("a"))
	b := SHA1([]byte("b"))
	if ExtendDigest(a, b) == ExtendDigest(b, a) {
		t.Fatal("extend must not be commutative")
	}
}

func TestDigestPredicates(t *testing.T) {
	var zero Digest
	if !zero.IsZero() {
		t.Fatal("zero digest not recognized")
	}
	if zero.IsOnes() {
		t.Fatal("zero digest claimed to be ones")
	}
	ones := OnesDigest()
	if !ones.IsOnes() {
		t.Fatal("ones digest not recognized")
	}
	if ones.IsZero() {
		t.Fatal("ones digest claimed to be zero")
	}
	d := SHA1([]byte("x"))
	if d.IsZero() || d.IsOnes() {
		t.Fatal("hash output claimed to be sentinel value")
	}
}

func TestDigestStrings(t *testing.T) {
	d := SHA1([]byte("x"))
	if len(d.Hex()) != 40 {
		t.Fatalf("Hex length = %d, want 40", len(d.Hex()))
	}
	if len(d.String()) != 16 {
		t.Fatalf("String length = %d, want 16", len(d.String()))
	}
}

func TestHMACRoundTrip(t *testing.T) {
	key := []byte("0123456789abcdef0123456789abcdef")
	data := []byte("transaction payload")
	mac := HMACSHA256(key, data)
	if !VerifyHMACSHA256(key, data, mac) {
		t.Fatal("valid MAC rejected")
	}
	if VerifyHMACSHA256(key, []byte("tampered"), mac) {
		t.Fatal("MAC accepted for different data")
	}
	if VerifyHMACSHA256([]byte("wrong key 00000000000000000000000"), data, mac) {
		t.Fatal("MAC accepted under wrong key")
	}
	mac[0] ^= 1
	if VerifyHMACSHA256(key, data, mac) {
		t.Fatal("tampered MAC accepted")
	}
}

func TestConstantTimeEqual(t *testing.T) {
	if !ConstantTimeEqual([]byte("abc"), []byte("abc")) {
		t.Fatal("equal slices compared unequal")
	}
	if ConstantTimeEqual([]byte("abc"), []byte("abd")) {
		t.Fatal("unequal slices compared equal")
	}
	if ConstantTimeEqual([]byte("abc"), []byte("ab")) {
		t.Fatal("different lengths compared equal")
	}
}

func TestPooledKeyCachedAndDistinct(t *testing.T) {
	k0a, err := PooledKey(0)
	if err != nil {
		t.Fatal(err)
	}
	k0b, err := PooledKey(0)
	if err != nil {
		t.Fatal(err)
	}
	if k0a != k0b {
		t.Fatal("PooledKey(0) not cached")
	}
	k1, err := PooledKey(1)
	if err != nil {
		t.Fatal(err)
	}
	if k0a.N.Cmp(k1.N) == 0 {
		t.Fatal("distinct pool indices produced the same modulus")
	}
	if k0a.N.BitLen() != DefaultRSABits {
		t.Fatalf("pool key size = %d, want %d", k0a.N.BitLen(), DefaultRSABits)
	}
}

func TestGenerateRSAKey(t *testing.T) {
	seed := SHA256Sum([]byte("test"))
	k, err := GenerateRSAKey(newDRBG(seed), 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Validate(); err != nil {
		t.Fatalf("generated key invalid: %v", err)
	}
}

func TestBufferRoundTrip(t *testing.T) {
	d := SHA1([]byte("digest"))
	b := NewBuffer(64)
	b.PutUint8(0xAB)
	b.PutUint16(0x1234)
	b.PutUint32(0xDEADBEEF)
	b.PutUint64(0x0102030405060708)
	b.PutDigest(d)
	b.PutBytes([]byte("hello"))
	b.PutString("world")
	b.PutBool(true)
	b.PutBool(false)
	b.PutRaw([]byte{9, 9})

	r := NewReader(b.Bytes())
	if got := r.Uint8(); got != 0xAB {
		t.Fatalf("Uint8 = %#x", got)
	}
	if got := r.Uint16(); got != 0x1234 {
		t.Fatalf("Uint16 = %#x", got)
	}
	if got := r.Uint32(); got != 0xDEADBEEF {
		t.Fatalf("Uint32 = %#x", got)
	}
	if got := r.Uint64(); got != 0x0102030405060708 {
		t.Fatalf("Uint64 = %#x", got)
	}
	if got := r.Digest(); got != d {
		t.Fatalf("Digest = %x", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("Bytes = %q", got)
	}
	if got := r.String(); got != "world" {
		t.Fatalf("String = %q", got)
	}
	if !r.Bool() {
		t.Fatal("first Bool = false")
	}
	if r.Bool() {
		t.Fatal("second Bool = true")
	}
	if got := r.Raw(2); !bytes.Equal(got, []byte{9, 9}) {
		t.Fatalf("Raw = %v", got)
	}
	if err := r.ExpectEOF(); err != nil {
		t.Fatalf("ExpectEOF: %v", err)
	}
}

func TestReaderUnderflow(t *testing.T) {
	r := NewReader([]byte{1, 2})
	_ = r.Uint32()
	if r.Err() == nil {
		t.Fatal("underflow not reported")
	}
	// Sticky error: subsequent reads keep failing.
	if got := r.Uint8(); got != 0 {
		t.Fatalf("read after error returned %d", got)
	}
	if r.Err() == nil {
		t.Fatal("error not sticky")
	}
}

func TestReaderRejectsHostileLength(t *testing.T) {
	b := NewBuffer(8)
	b.PutUint32(0xFFFFFFFF) // claimed length far beyond the data
	r := NewReader(b.Bytes())
	if got := r.Bytes(); got != nil {
		t.Fatalf("hostile length returned data: %v", got)
	}
	if r.Err() == nil {
		t.Fatal("hostile length prefix not rejected")
	}
}

func TestReaderTrailingBytes(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	_ = r.Uint8()
	if err := r.ExpectEOF(); err == nil {
		t.Fatal("trailing bytes not reported")
	}
}

func TestReaderBytesCopies(t *testing.T) {
	b := NewBuffer(16)
	b.PutBytes([]byte("abc"))
	wire := b.Bytes()
	r := NewReader(wire)
	got := r.Bytes()
	wire[len(wire)-1] = 'X' // mutate the underlying buffer
	if !bytes.Equal(got, []byte("abc")) {
		t.Fatal("Reader.Bytes did not copy")
	}
}

func TestBufferReaderProperty(t *testing.T) {
	// Property: any (uint32, bytes, string, bool) tuple round-trips.
	f := func(v uint32, p []byte, s string, flag bool) bool {
		b := NewBuffer(len(p) + len(s) + 16)
		b.PutUint32(v)
		b.PutBytes(p)
		b.PutString(s)
		b.PutBool(flag)
		r := NewReader(b.Bytes())
		gv := r.Uint32()
		gp := r.Bytes()
		gs := r.String()
		gf := r.Bool()
		if r.ExpectEOF() != nil {
			return false
		}
		return gv == v && bytes.Equal(gp, p) && gs == s && gf == flag
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDRBGDeterminism(t *testing.T) {
	seed := SHA256Sum([]byte("seed"))
	a := newDRBG(seed)
	b := newDRBG(seed)
	ba := make([]byte, 100)
	bb := make([]byte, 100)
	_, _ = a.Read(ba)
	_, _ = b.Read(bb)
	if !bytes.Equal(ba, bb) {
		t.Fatal("DRBG not deterministic")
	}
}
