// Package cryptoutil provides the cryptographic substrate shared by the
// software TPM, the attestation infrastructure, and the trusted-path
// protocol: digest helpers matching TPM v1.2 conventions (SHA-1), HMAC
// helpers, RSA key management with a deterministic test pool, and a
// big-endian serialization buffer matching TPM wire structure style.
package cryptoutil

import (
	"crypto/hmac"
	"crypto/rsa"
	"crypto/sha1"
	"crypto/sha256"
	"crypto/subtle"
	"fmt"
	"io"
	"sync"
)

// DigestSize is the size in bytes of a TPM v1.2 digest (SHA-1).
const DigestSize = 20

// Digest is a TPM v1.2 digest value. TPM 1.2 is hard-wired to SHA-1; this
// reproduction keeps that for PCR fidelity while using SHA-256 at the
// protocol layer where the original design is hash-agile.
type Digest [DigestSize]byte

// SHA1 computes the TPM-style digest of data.
func SHA1(data []byte) Digest {
	return sha1.Sum(data)
}

// SHA1Concat computes SHA-1 over the concatenation of the given chunks
// without intermediate allocation.
func SHA1Concat(chunks ...[]byte) Digest {
	h := sha1.New()
	for _, c := range chunks {
		h.Write(c)
	}
	var d Digest
	h.Sum(d[:0])
	return d
}

// ExtendDigest implements the TPM PCR extend operation:
// new = SHA1(old || measurement).
func ExtendDigest(old, measurement Digest) Digest {
	return SHA1Concat(old[:], measurement[:])
}

// IsZero reports whether the digest is all zero bytes (the post-DRTM reset
// value of a dynamic PCR).
func (d Digest) IsZero() bool {
	var zero Digest
	return d == zero
}

// IsOnes reports whether the digest is all 0xFF bytes (the power-on value
// of a dynamic PCR before any late launch).
func (d Digest) IsOnes() bool {
	for _, b := range d {
		if b != 0xFF {
			return false
		}
	}
	return true
}

// String renders the digest as lowercase hex, truncated for logs.
func (d Digest) String() string {
	return fmt.Sprintf("%x", d[:8])
}

// Hex renders the full digest as lowercase hex.
func (d Digest) Hex() string {
	return fmt.Sprintf("%x", d[:])
}

// OnesDigest returns the all-0xFF digest used as the power-on value of
// dynamically resettable PCRs.
func OnesDigest() Digest {
	var d Digest
	for i := range d {
		d[i] = 0xFF
	}
	return d
}

// SHA256Sum returns the SHA-256 digest of data. Protocol-layer structures
// (transactions, nonces) use SHA-256.
func SHA256Sum(data []byte) [32]byte {
	return sha256.Sum256(data)
}

// HMACSHA256 computes HMAC-SHA256 of data under key.
func HMACSHA256(key, data []byte) []byte {
	m := hmac.New(sha256.New, key)
	m.Write(data)
	return m.Sum(nil)
}

// VerifyHMACSHA256 verifies mac against HMAC-SHA256(key, data) in constant
// time.
func VerifyHMACSHA256(key, data, mac []byte) bool {
	want := HMACSHA256(key, data)
	return hmac.Equal(want, mac)
}

// ConstantTimeEqual compares two byte slices in constant time.
func ConstantTimeEqual(a, b []byte) bool {
	return subtle.ConstantTimeCompare(a, b) == 1
}

// GenerateRSAKey creates an RSA private key of the given size from the
// provided randomness source, wrapping the error with context.
func GenerateRSAKey(random io.Reader, bits int) (*rsa.PrivateKey, error) {
	key, err := rsa.GenerateKey(random, bits)
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: generate RSA-%d key: %w", bits, err)
	}
	return key, nil
}

// DefaultRSABits is the modulus size used for EKs and AIKs, matching the
// TPM v1.2 requirement.
const DefaultRSABits = 2048

// Key pool
//
// RSA key generation costs ~50–150 ms per key; a test run constructs dozens
// of simulated platforms. PooledKey hands out process-lifetime cached keys
// generated from a deterministic stream so tests and experiments are both
// fast and reproducible. Production-style callers that need unique keys use
// GenerateRSAKey directly.

var (
	poolMu   sync.Mutex
	poolKeys = map[int]*rsa.PrivateKey{}
)

// PooledKey returns the idx-th deterministic RSA-2048 key, generating and
// caching it on first use. Keys for distinct indices are independent.
func PooledKey(idx int) (*rsa.PrivateKey, error) {
	poolMu.Lock()
	defer poolMu.Unlock()
	if k, ok := poolKeys[idx]; ok {
		return k, nil
	}
	seed := sha256.Sum256([]byte(fmt.Sprintf("unitp-keypool-%d", idx)))
	k, err := rsa.GenerateKey(newDRBG(seed), DefaultRSABits)
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: pooled key %d: %w", idx, err)
	}
	poolKeys[idx] = k
	return k, nil
}

// drbg is a minimal SHA-256 counter DRBG implementing io.Reader, used only
// to derive the deterministic key pool.
type drbg struct {
	key     [32]byte
	counter uint64
	buf     []byte
}

func newDRBG(key [32]byte) *drbg { return &drbg{key: key} }

func (d *drbg) Read(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if len(d.buf) == 0 {
			h := sha256.New()
			h.Write(d.key[:])
			var ctr [8]byte
			for i := 0; i < 8; i++ {
				ctr[i] = byte(d.counter >> (56 - 8*i))
			}
			d.counter++
			h.Write(ctr[:])
			d.buf = h.Sum(nil)
		}
		c := copy(p, d.buf)
		d.buf = d.buf[c:]
		p = p[c:]
	}
	return n, nil
}
