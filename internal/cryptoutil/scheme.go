package cryptoutil

import (
	"crypto"
	"crypto/ed25519"
	"crypto/rsa"
	"crypto/x509"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
)

// Pluggable crypto backends. The attestation signature algorithm — what
// signs a quote and what an AIK certificate certifies — lives behind the
// narrow Scheme interface below (mirroring the CryptoProvider pattern of
// consensus clients: a handful of verbs, swappable backends). The
// paper-faithful profile is RSA-2048 with SHA-1 digests (TPM v1.2); an
// Ed25519 profile and an Ed25519 batch-verification profile sit next to
// it. Everything above this file — the TPM quote code, the attestation
// verifier, the provider — dispatches through a Scheme and never names
// an algorithm.
//
// Wire compatibility: SchemeRSA is the zero value, and every RSA wire
// format (certificates, quotes, evidence) is byte-identical to the
// pre-scheme encoding. Non-RSA profiles use tagged encodings that the
// legacy parsers cannot produce, so mixed deployments fail loudly at
// decode or verify time rather than silently cross-verifying.

// SchemeID identifies a crypto profile on the wire and in handshakes.
type SchemeID uint8

// Crypto profiles.
const (
	// SchemeRSA is the paper-faithful TPM v1.2 profile: RSA-2048
	// PKCS#1 v1.5 signatures over SHA-1 digests. The zero value, so
	// legacy structs decode as RSA.
	SchemeRSA SchemeID = 0

	// SchemeEd25519 signs quotes with Ed25519 (RFC 8032).
	SchemeEd25519 SchemeID = 1

	// SchemeEd25519Batch is Ed25519 with cohort batch verification:
	// the provider collects concurrently in-flight quote signatures
	// (the same yield-before-cut cohort discipline as WAL group
	// commit) and verifies each cohort in one VerifyBatch call.
	SchemeEd25519Batch SchemeID = 2
)

// String names the profile for flags, tables, and handshake errors.
func (id SchemeID) String() string {
	switch id {
	case SchemeRSA:
		return "rsa"
	case SchemeEd25519:
		return "ed25519"
	case SchemeEd25519Batch:
		return "ed25519-batch"
	default:
		return fmt.Sprintf("scheme(%d)", uint8(id))
	}
}

// ErrUnknownScheme is returned for unregistered scheme IDs or names.
var ErrUnknownScheme = errors.New("cryptoutil: unknown crypto scheme")

// ErrBadSignature is returned by Scheme.Verify for invalid signatures.
var ErrBadSignature = errors.New("cryptoutil: signature verification failed")

// Signer holds one attestation signing key under some scheme.
type Signer interface {
	// Scheme identifies the profile this key belongs to.
	Scheme() SchemeID

	// Public returns the scheme-specific public key encoding (PKCS#1
	// DER for RSA, 32 raw bytes for Ed25519).
	Public() []byte

	// Sign signs msg. The digest step (if any) is the scheme's
	// business: RSA hashes msg with SHA-1 first, Ed25519 signs msg
	// directly. random may be nil for deterministic schemes.
	Sign(random io.Reader, msg []byte) ([]byte, error)
}

// Scheme is the narrow swappable-crypto interface: generate a key,
// encode/verify signatures. Implementations must be safe for concurrent
// use.
type Scheme interface {
	// ID is the wire/handshake identifier.
	ID() SchemeID

	// Name is the flag-friendly profile name.
	Name() string

	// GenerateKey creates a signer from the given randomness source.
	GenerateKey(random io.Reader) (Signer, error)

	// Verify checks sig over msg under the scheme-encoded public key.
	// Returns nil on success, ErrBadSignature (possibly wrapped) on
	// failure.
	Verify(pub, msg, sig []byte) error

	// CheckPublicKey reports whether pub is a well-formed public key
	// under this scheme. Enrollment calls this so a client built for a
	// different profile is refused at certify time with a clear error,
	// instead of obtaining a certificate every later quote verification
	// rejects.
	CheckPublicKey(pub []byte) error
}

// BatchVerifier is implemented by schemes that can verify a whole
// cohort of signatures in one call. Verdicts are per-item and
// positionally aligned with the inputs, so a failing item is attributed
// without re-verifying the cohort.
type BatchVerifier interface {
	VerifyBatch(pubs, msgs, sigs [][]byte) []error
}

// --- RSA (paper-faithful TPM v1.2 profile) ---

type rsaScheme struct{ bits int }

type rsaSigner struct {
	key *rsa.PrivateKey
	der []byte
}

func (s *rsaSigner) Scheme() SchemeID { return SchemeRSA }
func (s *rsaSigner) Public() []byte   { return s.der }

func (s *rsaSigner) Sign(random io.Reader, msg []byte) ([]byte, error) {
	digest := SHA1(msg)
	sig, err := rsa.SignPKCS1v15(random, s.key, crypto.SHA1, digest[:])
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: rsa sign: %w", err)
	}
	return sig, nil
}

func (rsaScheme) ID() SchemeID { return SchemeRSA }
func (rsaScheme) Name() string { return "rsa" }

func (sch rsaScheme) GenerateKey(random io.Reader) (Signer, error) {
	bits := sch.bits
	if bits == 0 {
		bits = DefaultRSABits
	}
	key, err := GenerateRSAKey(random, bits)
	if err != nil {
		return nil, err
	}
	return NewRSASigner(key), nil
}

// NewRSASigner wraps an existing RSA key as a scheme signer (so pooled
// and pre-enrolled keys slot into the scheme interface).
func NewRSASigner(key *rsa.PrivateKey) Signer {
	return &rsaSigner{key: key, der: x509.MarshalPKCS1PublicKey(&key.PublicKey)}
}

func (rsaScheme) CheckPublicKey(pub []byte) error {
	if _, err := x509.ParsePKCS1PublicKey(pub); err != nil {
		return fmt.Errorf("cryptoutil: rsa: bad public key: %v", err)
	}
	return nil
}

func (rsaScheme) Verify(pub, msg, sig []byte) error {
	key, err := x509.ParsePKCS1PublicKey(pub)
	if err != nil {
		return fmt.Errorf("%w: bad RSA public key: %v", ErrBadSignature, err)
	}
	digest := SHA1(msg)
	if err := rsa.VerifyPKCS1v15(key, crypto.SHA1, digest[:], sig); err != nil {
		return ErrBadSignature
	}
	return nil
}

// --- Ed25519 ---

type ed25519Scheme struct{ batch bool }

type ed25519Signer struct {
	priv ed25519.PrivateKey
	id   SchemeID
}

func (s *ed25519Signer) Scheme() SchemeID { return s.id }
func (s *ed25519Signer) Public() []byte {
	return []byte(s.priv.Public().(ed25519.PublicKey))
}

func (s *ed25519Signer) Sign(_ io.Reader, msg []byte) ([]byte, error) {
	return ed25519.Sign(s.priv, msg), nil
}

func (sch ed25519Scheme) ID() SchemeID {
	if sch.batch {
		return SchemeEd25519Batch
	}
	return SchemeEd25519
}

func (sch ed25519Scheme) Name() string { return sch.ID().String() }

func (sch ed25519Scheme) GenerateKey(random io.Reader) (Signer, error) {
	_, priv, err := ed25519.GenerateKey(random)
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: ed25519 keygen: %w", err)
	}
	return &ed25519Signer{priv: priv, id: sch.ID()}, nil
}

func (sch ed25519Scheme) CheckPublicKey(pub []byte) error {
	if len(pub) != ed25519.PublicKeySize {
		return fmt.Errorf("cryptoutil: %s: bad public key length %d (want %d; an RSA-profile client cannot enroll under an Ed25519 server)",
			sch.Name(), len(pub), ed25519.PublicKeySize)
	}
	return nil
}

func (ed25519Scheme) Verify(pub, msg, sig []byte) error {
	if len(pub) != ed25519.PublicKeySize {
		return fmt.Errorf("%w: bad ed25519 public key length %d", ErrBadSignature, len(pub))
	}
	if !ed25519.Verify(ed25519.PublicKey(pub), msg, sig) {
		return ErrBadSignature
	}
	return nil
}

// VerifyBatch verifies a cohort of Ed25519 signatures in one call,
// deduplicating repeated (pub, msg, sig) triples (retransmissions) and
// fanning the distinct items across cores. Without curve-level
// multi-scalar multiplication (which would need an external Edwards
// arithmetic package this repo deliberately avoids) per-item cost
// matches single verification; the batch entry point is what the
// provider's cohort collector calls, and a true MSM backend drops in
// behind it without touching any caller.
func (sch ed25519Scheme) VerifyBatch(pubs, msgs, sigs [][]byte) []error {
	n := len(pubs)
	verdicts := make([]error, n)
	type slot struct{ first int }
	seen := make(map[string]slot, n)
	dupOf := make([]int, n)
	distinct := make([]int, 0, n)
	for i := 0; i < n; i++ {
		key := string(pubs[i]) + "\x00" + string(msgs[i]) + "\x00" + string(sigs[i])
		if s, ok := seen[key]; ok {
			dupOf[i] = s.first
			continue
		}
		seen[key] = slot{first: i}
		dupOf[i] = i
		distinct = append(distinct, i)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(distinct) {
		workers = len(distinct)
	}
	if workers <= 1 {
		for _, i := range distinct {
			verdicts[i] = sch.Verify(pubs[i], msgs[i], sigs[i])
		}
	} else {
		var wg sync.WaitGroup
		ch := make(chan int, len(distinct))
		for _, i := range distinct {
			ch <- i
		}
		close(ch)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range ch {
					verdicts[i] = sch.Verify(pubs[i], msgs[i], sigs[i])
				}
			}()
		}
		wg.Wait()
	}
	for i := 0; i < n; i++ {
		if dupOf[i] != i {
			verdicts[i] = verdicts[dupOf[i]]
		}
	}
	return verdicts
}

// --- Registry ---

var schemes = map[SchemeID]Scheme{
	SchemeRSA:          rsaScheme{},
	SchemeEd25519:      ed25519Scheme{batch: false},
	SchemeEd25519Batch: ed25519Scheme{batch: true},
}

// SchemeByID resolves a profile by wire identifier.
func SchemeByID(id SchemeID) (Scheme, error) {
	s, ok := schemes[id]
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrUnknownScheme, uint8(id))
	}
	return s, nil
}

// SchemeByName resolves a profile by flag name (rsa, ed25519,
// ed25519-batch).
func SchemeByName(name string) (Scheme, error) {
	for _, s := range schemes {
		if s.Name() == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownScheme, name)
}

// SchemeNames lists the registered profile names (for flag help).
func SchemeNames() []string {
	return []string{"rsa", "ed25519", "ed25519-batch"}
}

// BatchCapable reports whether a scheme supports cohort verification,
// returning the batch entry point when it does.
func BatchCapable(s Scheme) (BatchVerifier, bool) {
	bv, ok := s.(BatchVerifier)
	return bv, ok
}
