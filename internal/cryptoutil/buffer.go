package cryptoutil

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrBufferUnderflow is returned when a Reader runs out of bytes while
// decoding a structure.
var ErrBufferUnderflow = errors.New("cryptoutil: buffer underflow")

// ErrFieldTooLarge is returned when a length-prefixed field exceeds the
// decoder's sanity bound.
var ErrFieldTooLarge = errors.New("cryptoutil: length-prefixed field too large")

// maxFieldLen bounds a single length-prefixed field. TPM structures and
// protocol messages in this system are all well under 1 MiB; the bound
// protects decoders from hostile length prefixes.
const maxFieldLen = 1 << 20

// Buffer builds big-endian wire structures in the style of the TPM
// specification (fixed-width integers, 32-bit length-prefixed byte fields).
// The zero value is an empty buffer ready for use.
type Buffer struct {
	data []byte
}

// NewBuffer returns a Buffer with the given initial capacity.
func NewBuffer(capacity int) *Buffer {
	return &Buffer{data: make([]byte, 0, capacity)}
}

// Bytes returns the accumulated wire bytes. The caller must not modify the
// returned slice if it will keep using the Buffer.
func (b *Buffer) Bytes() []byte { return b.data }

// Len returns the current encoded length.
func (b *Buffer) Len() int { return len(b.data) }

// PutUint8 appends a single byte.
func (b *Buffer) PutUint8(v uint8) {
	b.data = append(b.data, v)
}

// PutUint16 appends a big-endian 16-bit value.
func (b *Buffer) PutUint16(v uint16) {
	b.data = binary.BigEndian.AppendUint16(b.data, v)
}

// PutUint32 appends a big-endian 32-bit value.
func (b *Buffer) PutUint32(v uint32) {
	b.data = binary.BigEndian.AppendUint32(b.data, v)
}

// PutUint64 appends a big-endian 64-bit value.
func (b *Buffer) PutUint64(v uint64) {
	b.data = binary.BigEndian.AppendUint64(b.data, v)
}

// PutRaw appends raw bytes with no length prefix (fixed-size fields such as
// digests).
func (b *Buffer) PutRaw(p []byte) {
	b.data = append(b.data, p...)
}

// PutDigest appends a TPM digest as a fixed 20-byte field.
func (b *Buffer) PutDigest(d Digest) {
	b.data = append(b.data, d[:]...)
}

// PutBytes appends a 32-bit length prefix followed by the bytes.
func (b *Buffer) PutBytes(p []byte) {
	b.PutUint32(uint32(len(p)))
	b.data = append(b.data, p...)
}

// PutString appends a length-prefixed UTF-8 string.
func (b *Buffer) PutString(s string) {
	b.PutUint32(uint32(len(s)))
	b.data = append(b.data, s...)
}

// PutBool appends a boolean as one byte.
func (b *Buffer) PutBool(v bool) {
	if v {
		b.PutUint8(1)
	} else {
		b.PutUint8(0)
	}
}

// Reader decodes big-endian wire structures produced by Buffer. All methods
// return ErrBufferUnderflow once the input is exhausted; after the first
// error every subsequent call fails, so callers may decode a full structure
// and check Err once at the end.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader returns a Reader over p. The Reader does not copy p.
func NewReader(p []byte) *Reader {
	return &Reader{data: p}
}

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.data) - r.off }

// ExpectEOF records an error if undecoded bytes remain.
func (r *Reader) ExpectEOF() error {
	if r.err != nil {
		return r.err
	}
	if r.Remaining() != 0 {
		r.err = fmt.Errorf("cryptoutil: %d trailing bytes after structure", r.Remaining())
	}
	return r.err
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.Remaining() < n {
		r.err = ErrBufferUnderflow
		return nil
	}
	p := r.data[r.off : r.off+n]
	r.off += n
	return p
}

// Uint8 decodes a single byte.
func (r *Reader) Uint8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

// Uint16 decodes a big-endian 16-bit value.
func (r *Reader) Uint16() uint16 {
	p := r.take(2)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint16(p)
}

// Uint32 decodes a big-endian 32-bit value.
func (r *Reader) Uint32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint32(p)
}

// Uint64 decodes a big-endian 64-bit value.
func (r *Reader) Uint64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint64(p)
}

// Raw decodes n raw bytes, returning a copy (nil for n == 0, so decoded
// structures compare equal to their nil-fielded originals).
func (r *Reader) Raw(n int) []byte {
	p := r.take(n)
	if p == nil || n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, p)
	return out
}

// Digest decodes a fixed 20-byte TPM digest.
func (r *Reader) Digest() Digest {
	var d Digest
	p := r.take(DigestSize)
	if p != nil {
		copy(d[:], p)
	}
	return d
}

// Bytes decodes a 32-bit length-prefixed byte field, returning a copy.
func (r *Reader) Bytes() []byte {
	n := r.Uint32()
	if r.err != nil {
		return nil
	}
	if n > maxFieldLen {
		r.err = ErrFieldTooLarge
		return nil
	}
	return r.Raw(int(n))
}

// String decodes a length-prefixed UTF-8 string.
func (r *Reader) String() string {
	return string(r.Bytes())
}

// Bool decodes a one-byte boolean. Only 0 and 1 are accepted: a strict
// codec keeps every encoding canonical (one value, one byte string), so
// a flipped bit in a persisted bool is detectable rather than silently
// collapsing to true.
func (r *Reader) Bool() bool {
	v := r.Uint8()
	if r.err == nil && v > 1 {
		r.err = fmt.Errorf("cryptoutil: non-canonical boolean byte %#x", v)
	}
	return v != 0
}
