// Package flicker provides the PAL (piece of application logic) session
// framework the paper builds on: named PAL images registered with a
// per-machine manager, sessions that marshal inputs and outputs through
// the untrusted OS, and sealed state that survives between sessions of
// the same PAL but is inaccessible to the OS and to any other PAL.
//
// The framework reproduces the Flicker architecture (McCune et al.,
// EuroSys 2008) that the paper's client side instantiates.
package flicker

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"unitp/internal/cryptoutil"
	"unitp/internal/platform"
	"unitp/internal/tpm"
)

// Framework errors.
var (
	// ErrPALExists is returned when registering a duplicate PAL name.
	ErrPALExists = errors.New("flicker: PAL already registered")

	// ErrUnknownPAL is returned when running an unregistered PAL.
	ErrUnknownPAL = errors.New("flicker: unknown PAL")

	// ErrInvalidPAL is returned for PALs without a name, image, or
	// entry point.
	ErrInvalidPAL = errors.New("flicker: invalid PAL definition")
)

// Entry is a PAL entry point. It receives the launch environment and the
// input the (untrusted) OS marshalled in, and returns output to marshal
// back out. Both cross the trust boundary: a correct PAL treats input as
// hostile and produces output whose integrity is verified remotely.
type Entry func(env *platform.LaunchEnv, input []byte) ([]byte, error)

// PAL is a registered piece of application logic.
type PAL struct {
	// Name is the manager-local identifier.
	Name string

	// Image is the code image measured by the late launch; the PAL's
	// remotely verifiable identity is SHA1(Image).
	Image []byte

	// Entry is the simulated behaviour of the image.
	Entry Entry

	// Compute is the modelled execution time of one session of this
	// PAL's own logic (excluding TPM commands, which charge
	// themselves). Zero is allowed: confirmation logic is microseconds
	// of real work.
	Compute time.Duration
}

// Measurement returns the PAL's identity digest, SHA1(Image).
func (p *PAL) Measurement() cryptoutil.Digest {
	return cryptoutil.SHA1(p.Image)
}

// ExpectedPCR17 returns PCR 17 while this PAL runs.
func (p *PAL) ExpectedPCR17() cryptoutil.Digest {
	return platform.ExpectedPCR17(p.Measurement())
}

// ExpectedPCR17Capped returns PCR 17 after a session of this PAL — the
// value a remote verifier demands in a quote.
func (p *PAL) ExpectedPCR17Capped() cryptoutil.Digest {
	return platform.ExpectedPCR17Capped(p.Measurement())
}

// validate checks the PAL definition.
func (p *PAL) validate() error {
	if p == nil || p.Name == "" || len(p.Image) == 0 || p.Entry == nil {
		return ErrInvalidPAL
	}
	return nil
}

// SessionResult reports one PAL session.
type SessionResult struct {
	// Output is what the PAL marshalled back to the OS (nil if the PAL
	// failed).
	Output []byte

	// Report is the platform's per-phase timing breakdown.
	Report *platform.LaunchReport

	// PALErr is the error returned by the PAL entry, if any.
	PALErr error
}

// Manager registers PALs and runs sessions on one machine.
type Manager struct {
	mu      sync.Mutex
	machine *platform.Machine
	pals    map[string]*PAL
}

// NewManager returns a session manager for the machine.
func NewManager(machine *platform.Machine) *Manager {
	return &Manager{
		machine: machine,
		pals:    make(map[string]*PAL),
	}
}

// Machine returns the manager's platform.
func (m *Manager) Machine() *platform.Machine { return m.machine }

// Register adds a PAL. Names must be unique per manager.
func (m *Manager) Register(pal *PAL) error {
	if err := pal.validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.pals[pal.Name]; ok {
		return fmt.Errorf("%w: %s", ErrPALExists, pal.Name)
	}
	// Copy the image so later caller mutations cannot change the
	// registered identity.
	img := make([]byte, len(pal.Image))
	copy(img, pal.Image)
	registered := *pal
	registered.Image = img
	m.pals[pal.Name] = &registered
	return nil
}

// Lookup returns a registered PAL.
func (m *Manager) Lookup(name string) (*PAL, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	pal, ok := m.pals[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownPAL, name)
	}
	return pal, nil
}

// Run executes one session of the named PAL with the given input,
// marshalling output back through the OS.
func (m *Manager) Run(name string, input []byte) (*SessionResult, error) {
	return m.RunWithOptions(name, input)
}

// RunWithOptions executes a session, forwarding launch options (attack
// modelling such as platform.WithClaimedImage) to the platform.
func (m *Manager) RunWithOptions(name string, input []byte, opts ...platform.LaunchOption) (*SessionResult, error) {
	pal, err := m.Lookup(name)
	if err != nil {
		return nil, err
	}
	var output []byte
	report, err := m.machine.LateLaunch(pal.Image, func(env *platform.LaunchEnv) error {
		if pal.Compute > 0 {
			env.ChargeCompute(pal.Compute)
		}
		out, err := pal.Entry(env, input)
		if err != nil {
			return err
		}
		output = out
		return nil
	}, opts...)
	if err != nil {
		return nil, fmt.Errorf("flicker: session %s: %w", name, err)
	}
	return &SessionResult{Output: output, Report: report, PALErr: report.PALErr}, nil
}

// SaveState seals PAL state to the current (pre-cap) PCR 17 value at
// locality 2: only a future session of the *same* PAL can load it. Call
// from inside a PAL entry.
func SaveState(env *platform.LaunchEnv, state []byte) (*tpm.SealedBlob, error) {
	blob, err := env.SealCurrent([]int{tpm.PCRDRTM}, tpm.MaskOf(2), state)
	if err != nil {
		return nil, fmt.Errorf("flicker: save state: %w", err)
	}
	return blob, nil
}

// LoadState unseals PAL state saved by a previous session of the same
// PAL. Call from inside a PAL entry.
func LoadState(env *platform.LaunchEnv, blob *tpm.SealedBlob) ([]byte, error) {
	state, err := env.Unseal(blob)
	if err != nil {
		return nil, fmt.Errorf("flicker: load state: %w", err)
	}
	return state, nil
}
