package flicker

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"unitp/internal/cryptoutil"
	"unitp/internal/platform"
	"unitp/internal/sim"
	"unitp/internal/tpm"
)

func newTestManager(t *testing.T) *Manager {
	t.Helper()
	m, err := platform.New(platform.Config{Random: sim.NewRand(8)})
	if err != nil {
		t.Fatal(err)
	}
	return NewManager(m)
}

func echoPAL(name string) *PAL {
	return &PAL{
		Name:  name,
		Image: []byte("image-of-" + name),
		Entry: func(_ *platform.LaunchEnv, input []byte) ([]byte, error) {
			out := append([]byte("echo:"), input...)
			return out, nil
		},
	}
}

func TestRegisterAndRun(t *testing.T) {
	m := newTestManager(t)
	if err := m.Register(echoPAL("echo")); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run("echo", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if res.PALErr != nil {
		t.Fatalf("PAL error: %v", res.PALErr)
	}
	if !bytes.Equal(res.Output, []byte("echo:hello")) {
		t.Fatalf("output = %q", res.Output)
	}
	if res.Report == nil || res.Report.Total <= 0 {
		t.Fatal("missing timing report")
	}
}

func TestRegisterValidation(t *testing.T) {
	m := newTestManager(t)
	cases := []*PAL{
		nil,
		{},
		{Name: "x"},
		{Name: "x", Image: []byte("i")},
		{Image: []byte("i"), Entry: func(*platform.LaunchEnv, []byte) ([]byte, error) { return nil, nil }},
	}
	for i, pal := range cases {
		if err := m.Register(pal); !errors.Is(err, ErrInvalidPAL) {
			t.Fatalf("case %d: %v", i, err)
		}
	}
}

func TestRegisterDuplicate(t *testing.T) {
	m := newTestManager(t)
	if err := m.Register(echoPAL("dup")); err != nil {
		t.Fatal(err)
	}
	if err := m.Register(echoPAL("dup")); !errors.Is(err, ErrPALExists) {
		t.Fatalf("duplicate register: %v", err)
	}
}

func TestRunUnknownPAL(t *testing.T) {
	m := newTestManager(t)
	if _, err := m.Run("ghost", nil); !errors.Is(err, ErrUnknownPAL) {
		t.Fatalf("unknown PAL: %v", err)
	}
	if _, err := m.Lookup("ghost"); !errors.Is(err, ErrUnknownPAL) {
		t.Fatalf("unknown lookup: %v", err)
	}
}

func TestRegisteredImageImmutable(t *testing.T) {
	m := newTestManager(t)
	img := []byte("mutable-image")
	pal := &PAL{
		Name:  "p",
		Image: img,
		Entry: func(*platform.LaunchEnv, []byte) ([]byte, error) { return nil, nil },
	}
	if err := m.Register(pal); err != nil {
		t.Fatal(err)
	}
	img[0] = 'X' // attacker mutates the caller's copy after registration
	got, err := m.Lookup("p")
	if err != nil {
		t.Fatal(err)
	}
	if got.Measurement() != cryptoutil.SHA1([]byte("mutable-image")) {
		t.Fatal("registered identity changed via caller's slice")
	}
}

func TestPALErrorPropagates(t *testing.T) {
	m := newTestManager(t)
	sentinel := errors.New("refused")
	if err := m.Register(&PAL{
		Name:  "fail",
		Image: []byte("fail-image"),
		Entry: func(*platform.LaunchEnv, []byte) ([]byte, error) { return nil, sentinel },
	}); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run("fail", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.PALErr, sentinel) {
		t.Fatalf("PALErr = %v", res.PALErr)
	}
	if res.Output != nil {
		t.Fatal("failed PAL produced output")
	}
}

func TestPALComputeCharged(t *testing.T) {
	clock := sim.NewVirtualClock()
	machine, err := platform.New(platform.Config{Clock: clock, Random: sim.NewRand(9)})
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(machine)
	const work = 7 * time.Millisecond
	if err := m.Register(&PAL{
		Name:    "busy",
		Image:   []byte("busy-image"),
		Compute: work,
		Entry:   func(*platform.LaunchEnv, []byte) ([]byte, error) { return nil, nil },
	}); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run("busy", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.PALRun != work {
		t.Fatalf("PALRun = %v, want %v", res.Report.PALRun, work)
	}
}

func TestExpectedPCRHelpers(t *testing.T) {
	pal := echoPAL("e")
	if pal.ExpectedPCR17() != platform.ExpectedPCR17(pal.Measurement()) {
		t.Fatal("ExpectedPCR17 mismatch")
	}
	if pal.ExpectedPCR17Capped() != platform.ExpectedPCR17Capped(pal.Measurement()) {
		t.Fatal("ExpectedPCR17Capped mismatch")
	}
	if pal.ExpectedPCR17() == pal.ExpectedPCR17Capped() {
		t.Fatal("cap did not change expected value")
	}
}

func TestSealedStateAcrossSessions(t *testing.T) {
	m := newTestManager(t)
	var saved *tpm.SealedBlob

	counter := &PAL{
		Name:  "counter",
		Image: []byte("counter-image"),
		Entry: func(env *platform.LaunchEnv, input []byte) ([]byte, error) {
			state := []byte{0}
			if saved != nil {
				loaded, err := LoadState(env, saved)
				if err != nil {
					return nil, err
				}
				state = loaded
			}
			state[0]++
			blob, err := SaveState(env, state)
			if err != nil {
				return nil, err
			}
			saved = blob
			return []byte{state[0]}, nil
		},
	}
	if err := m.Register(counter); err != nil {
		t.Fatal(err)
	}
	for want := byte(1); want <= 3; want++ {
		res, err := m.Run("counter", nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.PALErr != nil {
			t.Fatalf("run %d: %v", want, res.PALErr)
		}
		if len(res.Output) != 1 || res.Output[0] != want {
			t.Fatalf("run %d output = %v", want, res.Output)
		}
	}
}

func TestSealedStateUnreadableByOtherPAL(t *testing.T) {
	m := newTestManager(t)
	var saved *tpm.SealedBlob
	saver := &PAL{
		Name:  "saver",
		Image: []byte("saver-image"),
		Entry: func(env *platform.LaunchEnv, _ []byte) ([]byte, error) {
			blob, err := SaveState(env, []byte("secret"))
			if err != nil {
				return nil, err
			}
			saved = blob
			return nil, nil
		},
	}
	thief := &PAL{
		Name:  "thief",
		Image: []byte("thief-image"),
		Entry: func(env *platform.LaunchEnv, _ []byte) ([]byte, error) {
			_, err := LoadState(env, saved)
			return nil, err
		},
	}
	if err := m.Register(saver); err != nil {
		t.Fatal(err)
	}
	if err := m.Register(thief); err != nil {
		t.Fatal(err)
	}
	if res, err := m.Run("saver", nil); err != nil || res.PALErr != nil {
		t.Fatalf("saver: %v / %v", err, res.PALErr)
	}
	res, err := m.Run("thief", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.PALErr, tpm.ErrWrongPCRState) {
		t.Fatalf("thief PAL read foreign state: %v", res.PALErr)
	}
	// The OS cannot unseal it either.
	if _, err := m.Machine().TPM().Unseal(0, saved); err == nil {
		t.Fatal("OS unsealed PAL state")
	}
}

func TestRunWithClaimedImageOption(t *testing.T) {
	// With full protections the claimed image is ignored; the session's
	// quoteable identity is the real one.
	m := newTestManager(t)
	pal := echoPAL("real")
	if err := m.Register(pal); err != nil {
		t.Fatal(err)
	}
	res, err := m.RunWithOptions("real", nil, platform.WithClaimedImage([]byte("fake")))
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Measurement != pal.Measurement() {
		t.Fatal("claimed image affected measured launch")
	}
}
