package unitp_test

import (
	"fmt"
	"net"
	"sync"
	"testing"

	"unitp"
	"unitp/internal/attest"
	"unitp/internal/core"
	"unitp/internal/cryptoutil"
	"unitp/internal/flicker"
	"unitp/internal/netsim"
	"unitp/internal/platform"
	"unitp/internal/sim"
	"unitp/internal/tpm"
)

// tcpFixture runs a provider on a real TCP listener and builds a client
// machine connected to it — the full stack the cmd/ tools use, inside
// one test process.
type tcpFixture struct {
	provider *core.Provider
	client   *core.Client
	machine  *platform.Machine
	addr     string
	done     chan struct{}
}

func newTCPFixture(t *testing.T) *tcpFixture {
	t.Helper()
	clock := sim.NewVirtualClock()
	rng := sim.NewRand(0x7C9)

	caKey, err := tpm.PooledKeySource().Next()
	if err != nil {
		t.Fatal(err)
	}
	ca := attest.NewPrivacyCA("tcp-test-ca", caKey, clock, rng.Fork("ca"))
	provKey, err := tpm.PooledKeySource().Next()
	if err != nil {
		t.Fatal(err)
	}
	provider := core.NewProvider(core.ProviderConfig{
		Name: "tcp-test", CAPub: ca.PublicKey(), Key: provKey,
		Clock: clock, Random: rng.Fork("provider"),
	})
	provider.Verifier().ApprovePAL(core.ConfirmPALName, cryptoutil.SHA1(core.ConfirmPALImage()))
	provider.Verifier().ApprovePAL(core.PINPALName, cryptoutil.SHA1(core.PINPALImage()))
	if err := provider.Ledger().CreateAccount("alice", 100_000); err != nil {
		t.Fatal(err)
	}
	if err := provider.Ledger().CreateAccount("bob", 0); err != nil {
		t.Fatal(err)
	}
	if err := provider.EnrollCredential("alice", "2468"); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				_ = netsim.Serve(conn, provider.Handle)
			}()
		}
	}()

	machine, err := platform.New(platform.Config{Clock: clock, Random: rng.Fork("machine")})
	if err != nil {
		t.Fatal(err)
	}
	if err := ca.EnrollEK("tcp-client", machine.TPM().EK()); err != nil {
		t.Fatal(err)
	}
	aik, aikPub, err := machine.TPM().CreateAIK()
	if err != nil {
		t.Fatal(err)
	}
	cert, err := ca.CertifyAIK("tcp-client", machine.TPM().EK(), aikPub)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	client, err := core.NewClient(core.ClientConfig{
		Manager:   flicker.NewManager(machine),
		Transport: netsim.NewConnTransport(conn),
		AIK:       aik,
		Cert:      cert,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &tcpFixture{
		provider: provider, client: client, machine: machine,
		addr: ln.Addr().String(), done: done,
	}
}

func TestFullStackOverRealTCP(t *testing.T) {
	f := newTCPFixture(t)

	// One confirmed transaction.
	pressed := false
	f.machine.SetInputPump(func() bool {
		if pressed {
			return false
		}
		pressed = true
		f.machine.Keyboard().Press('y')
		return true
	})
	tx := &core.Transaction{ID: "tcp-1", From: "alice", To: "bob",
		AmountCents: 4_200, Currency: "EUR"}
	outcome, err := f.client.SubmitTransaction(tx)
	if err != nil {
		t.Fatal(err)
	}
	if !outcome.Accepted || !outcome.Authentic {
		t.Fatalf("outcome = %+v", outcome)
	}
	if bal, _ := f.provider.Ledger().Balance("bob"); bal != 4_200 {
		t.Fatalf("bob = %d", bal)
	}

	// A login over the same connection.
	answered := false
	f.machine.SetInputPump(func() bool {
		if answered {
			return false
		}
		answered = true
		for _, r := range "2468" {
			f.machine.Keyboard().Press(r)
		}
		f.machine.Keyboard().Press('\n')
		return true
	})
	outcome, err = f.client.Login("alice")
	if err != nil {
		t.Fatal(err)
	}
	if !outcome.Accepted || outcome.Token == "" {
		t.Fatalf("login outcome = %+v", outcome)
	}
}

func TestProviderConcurrentHandle(t *testing.T) {
	// Many goroutines hammer one provider engine with auto-accept
	// submissions; the ledger must stay consistent (run with -race to
	// exercise the locking).
	clock := sim.NewVirtualClock()
	rng := unitp.NewRand(77)
	caKey, err := tpm.PooledKeySource().Next()
	if err != nil {
		t.Fatal(err)
	}
	ca := attest.NewPrivacyCA("conc-ca", caKey, clock, rng.Fork("ca"))
	provider := core.NewProvider(core.ProviderConfig{
		Name: "conc", CAPub: ca.PublicKey(),
		Clock: clock, Random: rng.Fork("p"),
		ConfirmThresholdCents: 1 << 40, // auto-accept: pure engine path
	})
	const workers, perWorker = 8, 50
	if err := provider.Ledger().CreateAccount("sink", 0); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		if err := provider.Ledger().CreateAccount(fmt.Sprintf("src-%d", w), perWorker); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				payload, err := core.EncodeMessage(&core.SubmitTx{Tx: &core.Transaction{
					ID:   fmt.Sprintf("c-%d-%d", w, i),
					From: fmt.Sprintf("src-%d", w), To: "sink",
					AmountCents: 1, Currency: "EUR",
				}})
				if err != nil {
					errs <- err
					return
				}
				respBytes, err := provider.Handle(payload)
				if err != nil {
					errs <- err
					return
				}
				resp, err := core.DecodeMessage(respBytes)
				if err != nil {
					errs <- err
					return
				}
				if !resp.(*core.Outcome).Accepted {
					errs <- fmt.Errorf("rejected: %+v", resp)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	bal, err := provider.Ledger().Balance("sink")
	if err != nil {
		t.Fatal(err)
	}
	if bal != workers*perWorker {
		t.Fatalf("sink = %d, want %d", bal, workers*perWorker)
	}
	if st := provider.Stats(); st.AutoAccepted != workers*perWorker {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLossyLinkEndToEnd(t *testing.T) {
	// A 5%-lossy WAN path: the transport retries and the protocol
	// still completes (nonces are single-use but a round trip is
	// atomic in this model — loss costs time, not correctness).
	d, err := unitp.NewDeployment(unitp.DeploymentConfig{
		Seed: 91,
		Link: unitp.Link{Name: "flaky", Latency: 40e6, Jitter: 5e6, LossProb: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	user := unitp.DefaultUser(d.Rng.Fork("user"))
	stream := unitp.NewTxStream(d.Rng.Fork("txs"), unitp.TxStreamConfig{From: "alice", MaxCents: 600})
	for i := 0; i < 10; i++ {
		tx, _ := stream.Next()
		user.Intend(tx)
		user.AttachTo(d.Machine)
		outcome, err := d.Client.SubmitTransaction(tx)
		if err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
		if !outcome.Accepted {
			t.Fatalf("tx %d rejected: %s", i, outcome.Reason)
		}
	}
	sent, lost := d.Pipe.Stats()
	if lost == 0 {
		t.Logf("note: no losses sampled in %d messages", sent)
	}
}
