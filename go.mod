module unitp

go 1.22
