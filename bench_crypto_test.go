// Crypto-profile benchmarks (DESIGN.md §15, EXPERIMENTS.md F16): the
// provider-side cost of one confirmed transaction under each pluggable
// quote-signature scheme, plus the attested-session HMAC path that
// amortizes the quote away entirely. Frames are pre-minted outside the
// timed window, so each iteration measures exactly what the provider
// pays: decode, evidence verification (or MAC check), and the ledger
// transition — the same hot path cmd/tpbench's F16 normalizes per core.
package unitp_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"unitp/internal/attest"
	"unitp/internal/core"
	"unitp/internal/cryptoutil"
	"unitp/internal/sim"
	"unitp/internal/workload"
)

// benchCryptoFixture is one certified synthetic platform plus a
// memory-only provider sharing its crypto profile — no store, so the
// numbers isolate the cryptography from fsync costs.
type benchCryptoFixture struct {
	provider *core.Provider
	client   *workload.SyntheticClient
}

func newBenchCryptoFixture(b *testing.B, schemeName string) *benchCryptoFixture {
	b.Helper()
	scheme, err := cryptoutil.SchemeByName(schemeName)
	if err != nil {
		b.Fatal(err)
	}
	caKey, err := cryptoutil.GenerateRSAKey(sim.NewRand(0xC0), cryptoutil.DefaultRSABits)
	if err != nil {
		b.Fatal(err)
	}
	ca := attest.NewPrivacyCA("bench-crypto-ca", caKey, nil, sim.NewRand(0xC1))
	palMeas := cryptoutil.SHA1([]byte("bench-crypto-confirm-pal"))
	client, err := workload.NewSyntheticClientScheme(ca, "bench-crypto-platform", palMeas,
		sim.NewRand(0xC2), cryptoutil.DefaultRSABits, scheme)
	if err != nil {
		b.Fatal(err)
	}
	provKey, err := cryptoutil.GenerateRSAKey(sim.NewRand(0xC3), cryptoutil.DefaultRSABits)
	if err != nil {
		b.Fatal(err)
	}
	p := core.NewProvider(core.ProviderConfig{
		Name:   "bench-crypto",
		CAPub:  ca.PublicKey(),
		Key:    provKey,
		Clock:  sim.WallClock{},
		Random: sim.NewRand(0xC4),
		Scheme: scheme,
		// The session benchmark drains b.N confirmations through one
		// session; neither budget may force a re-quote mid-run.
		SessionMaxTx:  1 << 30,
		SessionMaxAge: 0,
	})
	p.Verifier().ApprovePAL(core.ConfirmPALName, palMeas)
	p.Verifier().ApprovePAL(core.SessionOpenPALNameFor(p.PublicKeyDER()),
		cryptoutil.SHA1(core.SessionOpenPALImage(p.PublicKeyDER())))
	for acct, cents := range map[string]int64{"alice": 1 << 50, "bob": 0} {
		if err := p.Ledger().CreateAccount(acct, cents); err != nil {
			b.Fatal(err)
		}
	}
	return &benchCryptoFixture{provider: p, client: client}
}

// roundTrip pushes one encoded message through the provider and decodes
// the answer.
func (f *benchCryptoFixture) roundTrip(b *testing.B, msg any) any {
	b.Helper()
	req, err := core.EncodeMessage(msg)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := f.provider.Handle(req)
	if err != nil {
		b.Fatal(err)
	}
	out, err := core.DecodeMessage(resp)
	if err != nil {
		b.Fatal(err)
	}
	return out
}

// mintQuoteConfirms prepares n ready-to-drain ConfirmTx frames with
// genuine evidence under the fixture's scheme.
func (f *benchCryptoFixture) mintQuoteConfirms(b *testing.B, n int) [][]byte {
	b.Helper()
	frames := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		tx := &core.Transaction{
			ID: fmt.Sprintf("bench-%d", i), From: "alice", To: "bob",
			AmountCents: 1, Currency: "EUR",
		}
		ch, ok := f.roundTrip(b, &core.SubmitTx{Tx: tx}).(*core.Challenge)
		if !ok {
			b.Fatalf("submit %d: no challenge", i)
		}
		evidence, err := f.client.ConfirmEvidence(ch.Nonce, ch.Tx.Digest(), true)
		if err != nil {
			b.Fatal(err)
		}
		frame, err := core.EncodeMessage(&core.ConfirmTx{
			Nonce: ch.Nonce, Confirmed: true, Mode: core.ModeQuote, Evidence: evidence,
		})
		if err != nil {
			b.Fatal(err)
		}
		frames = append(frames, frame)
	}
	return frames
}

// drainAccepted pushes one frame through Handle and fails on anything
// but an accepted outcome.
func (f *benchCryptoFixture) drainAccepted(b *testing.B, frame []byte) {
	resp, err := f.provider.Handle(frame)
	if err != nil {
		b.Fatal(err)
	}
	msg, err := core.DecodeMessage(resp)
	if err != nil {
		b.Fatal(err)
	}
	if out, ok := msg.(*core.Outcome); !ok || !out.Accepted {
		b.Fatalf("confirm not accepted: %+v", msg)
	}
}

// benchConfirmQuote measures one full quote-verified confirmation per
// iteration under the named scheme.
func benchConfirmQuote(b *testing.B, schemeName string) {
	f := newBenchCryptoFixture(b, schemeName)
	frames := f.mintQuoteConfirms(b, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.drainAccepted(b, frames[i])
	}
}

func BenchmarkConfirmRSA(b *testing.B) { benchConfirmQuote(b, "rsa") }

func BenchmarkConfirmEd25519(b *testing.B) { benchConfirmQuote(b, "ed25519") }

// BenchmarkConfirmEd25519Batch drains concurrently: the batch verifier
// only amortizes when requests are in flight together, exactly as a
// loaded provider sees them.
func BenchmarkConfirmEd25519Batch(b *testing.B) {
	f := newBenchCryptoFixture(b, "ed25519-batch")
	frames := f.mintQuoteConfirms(b, b.N)
	var next atomic.Int64
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(next.Add(1)) - 1
			f.drainAccepted(b, frames[i])
		}
	})
}

// BenchmarkConfirmSessionHMAC measures the re-confirmation fast path:
// one attested session opened outside the timed window, then each
// iteration is an HMAC-authenticated ConfirmTxSession — no quote, no
// signature, just the MAC plus the ledger transition.
func BenchmarkConfirmSessionHMAC(b *testing.B) {
	f := newBenchCryptoFixture(b, "rsa")
	const sessionID = 0xBE7C
	ch, ok := f.roundTrip(b, &core.SessionOpen{
		PlatformID: "bench-crypto-platform", Account: "alice",
	}).(*core.SessionChallenge)
	if !ok {
		b.Fatal("session open: no challenge")
	}
	sess, evidence, err := f.client.OpenSessionEvidence(ch.Nonce, "alice", sessionID, ch.ProviderPubDER, ch.KexPub)
	if err != nil {
		b.Fatal(err)
	}
	if _, ok := f.roundTrip(b, &core.SessionProve{
		Nonce: ch.Nonce, PlatformID: "bench-crypto-platform", Account: "alice",
		SessionID: sessionID, EncKey: sess.EncKey, Evidence: evidence,
	}).(*core.SessionGrant); !ok {
		b.Fatal("session prove: no grant")
	}

	frames := make([][]byte, 0, b.N)
	for i := 0; i < b.N; i++ {
		tx := &core.Transaction{
			ID: fmt.Sprintf("bench-sess-%d", i), From: "alice", To: "bob",
			AmountCents: 1, Currency: "EUR",
		}
		tch, ok := f.roundTrip(b, &core.SubmitTx{Tx: tx}).(*core.Challenge)
		if !ok {
			b.Fatalf("submit %d: no challenge", i)
		}
		counter, mac := sess.ConfirmMAC(tch.Nonce, tch.Tx.Digest(), true)
		frame, err := core.EncodeMessage(&core.ConfirmTxSession{
			Nonce: tch.Nonce, Confirmed: true,
			SessionID: sessionID, Counter: counter, MAC: mac,
		})
		if err != nil {
			b.Fatal(err)
		}
		frames = append(frames, frame)
	}
	// Counters must arrive strictly increasing: the drain is serial and
	// in mint order by construction.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.drainAccepted(b, frames[i])
	}
}
