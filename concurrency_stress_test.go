// Concurrency stress for the provider request pipeline (DESIGN.md §11):
// many goroutines drive mixed flows — quote confirmations, authenticated
// denials, idempotent replays, presence proofs, corrupt frames — through
// Provider.Handle against a durable store, and the test checks the
// invariants the pipeline must preserve under interleaving: balance
// conservation, exactly-once execution, a verifying audit chain, and a
// restart that reproduces the live state. Run it with -race; the point
// is to give the detector real interleavings over the sharded session
// state and the group committer.
package unitp_test

import (
	"fmt"
	"sync"
	"testing"

	"unitp/internal/attest"
	"unitp/internal/core"
	"unitp/internal/cryptoutil"
	"unitp/internal/sim"
	"unitp/internal/store"
	"unitp/internal/workload"
)

const (
	// stressGoroutines is the number of concurrent clients; each runs
	// stressTxPer full sessions, so the provider sees 64×3 = 192
	// sessions of interleaved flows.
	stressGoroutines = 64
	stressTxPer      = 3

	// stressCents is the amount each accepted transfer moves.
	stressCents = 7

	// stressFunds seeds alice's account.
	stressFunds = int64(1) << 30
)

// newStressRig builds a durable pipeline-mode provider plus one
// synthetic platform every goroutine shares (evidence minting is
// stateless), returning the config a restart needs to restore it.
func newStressRig(t *testing.T) (*core.Provider, *store.MemBackend, *workload.SyntheticClient, core.ProviderConfig, cryptoutil.Digest) {
	t.Helper()
	caKey, err := cryptoutil.PooledKey(3101)
	if err != nil {
		t.Fatal(err)
	}
	ca := attest.NewPrivacyCA("stress-ca", caKey, nil, sim.NewRand(0x57E5))
	palMeas := cryptoutil.SHA1([]byte("stress-pal"))
	// 1024-bit client keys keep evidence minting cheap under -race; the
	// provider still does full RSA verification per request.
	client, err := workload.NewSyntheticClient(ca, "stress-platform", palMeas,
		sim.NewRand(0x57E6), 1024)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.ProviderConfig{
		Name:   "stress-bank",
		CAPub:  ca.PublicKey(),
		Clock:  sim.WallClock{},
		Random: sim.NewRand(0x57E7),
	}
	p := core.NewProvider(cfg)
	p.Verifier().ApprovePAL(core.ConfirmPALName, palMeas)
	p.Verifier().ApprovePAL(core.PresencePALName, palMeas)
	for acct, cents := range map[string]int64{"alice": stressFunds, "bob": 0} {
		if err := p.Ledger().CreateAccount(acct, cents); err != nil {
			t.Fatal(err)
		}
	}
	backend := store.NewMemBackend()
	st, err := store.Open(backend)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	return p, backend, client, cfg, palMeas
}

// stressConfirm runs one full quote-confirm session and returns the
// ConfirmTx frame it sent (for replay checks).
func stressConfirm(p *core.Provider, client *workload.SyntheticClient, id string, approve bool) ([]byte, error) {
	tx := &core.Transaction{ID: id, From: "alice", To: "bob",
		AmountCents: stressCents, Currency: "EUR"}
	req, err := core.EncodeMessage(&core.SubmitTx{Tx: tx})
	if err != nil {
		return nil, err
	}
	resp, err := p.Handle(req)
	if err != nil {
		return nil, err
	}
	msg, err := core.DecodeMessage(resp)
	if err != nil {
		return nil, err
	}
	ch, ok := msg.(*core.Challenge)
	if !ok {
		return nil, fmt.Errorf("%s: got %T, want challenge", id, msg)
	}
	evidence, err := client.ConfirmEvidence(ch.Nonce, ch.Tx.Digest(), approve)
	if err != nil {
		return nil, err
	}
	frame, err := core.EncodeMessage(&core.ConfirmTx{
		Nonce: ch.Nonce, Confirmed: approve, Mode: core.ModeQuote, Evidence: evidence,
	})
	if err != nil {
		return nil, err
	}
	resp, err = p.Handle(frame)
	if err != nil {
		return nil, err
	}
	out, err := decodeOutcome(resp)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", id, err)
	}
	if out.Accepted != approve {
		return nil, fmt.Errorf("%s: accepted=%v, want %v (%s)", id, out.Accepted, approve, out.Reason)
	}
	if !out.Authentic {
		return nil, fmt.Errorf("%s: outcome not authentic", id)
	}
	return frame, nil
}

// stressPresence runs one human-presence session.
func stressPresence(p *core.Provider, client *workload.SyntheticClient) error {
	req, err := core.EncodeMessage(&core.PresenceRequest{})
	if err != nil {
		return err
	}
	resp, err := p.Handle(req)
	if err != nil {
		return err
	}
	msg, err := core.DecodeMessage(resp)
	if err != nil {
		return err
	}
	ch, ok := msg.(*core.PresenceChallenge)
	if !ok {
		return fmt.Errorf("presence: got %T, want challenge", msg)
	}
	evidence, err := client.PresenceEvidence(ch.Nonce)
	if err != nil {
		return err
	}
	proof, err := core.EncodeMessage(&core.PresenceProof{Nonce: ch.Nonce, Evidence: evidence})
	if err != nil {
		return err
	}
	resp, err = p.Handle(proof)
	if err != nil {
		return err
	}
	out, err := decodeOutcome(resp)
	if err != nil {
		return err
	}
	if !out.Accepted || out.Token == "" {
		return fmt.Errorf("presence rejected: %+v", out)
	}
	return nil
}

func decodeOutcome(resp []byte) (*core.Outcome, error) {
	msg, err := core.DecodeMessage(resp)
	if err != nil {
		return nil, err
	}
	out, ok := msg.(*core.Outcome)
	if !ok {
		return nil, fmt.Errorf("got %T, want outcome", msg)
	}
	return out, nil
}

func TestPipelineConcurrencyStress(t *testing.T) {
	p, backend, client, cfg, palMeas := newStressRig(t)

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		errs    []error
		replays [][]byte // one accepted ConfirmTx frame per replaying goroutine
	)
	report := func(err error) {
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	}
	for g := 0; g < stressGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < stressTxPer; k++ {
				id := fmt.Sprintf("stress-%d-%d", g, k)
				switch g % 4 {
				case 0: // approve, then replay the exact frame
					frame, err := stressConfirm(p, client, id, true)
					if err != nil {
						report(err)
						return
					}
					resp, err := p.Handle(frame)
					if err != nil {
						report(fmt.Errorf("%s replay: %w", id, err))
						return
					}
					out, err := decodeOutcome(resp)
					if err != nil || !out.Accepted {
						report(fmt.Errorf("%s replay: %v %+v", id, err, out))
						return
					}
					if k == 0 {
						mu.Lock()
						replays = append(replays, frame)
						mu.Unlock()
					}
				case 1: // authenticated denial — no money moves
					if _, err := stressConfirm(p, client, id, false); err != nil {
						report(err)
						return
					}
				case 2: // presence proof — no money moves
					if err := stressPresence(p, client); err != nil {
						report(err)
						return
					}
				case 3: // garbage frame first, then a real confirmation
					if resp, err := p.Handle([]byte{0xFF, 0x00, 0xDE}); err == nil {
						if out, derr := decodeOutcome(resp); derr == nil && out.Accepted {
							report(fmt.Errorf("%s: corrupt frame accepted", id))
							return
						}
					}
					if _, err := stressConfirm(p, client, id, true); err != nil {
						report(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Exactly the approving classes (g%4 ∈ {0,3}) moved money; replays
	// and denials must not have.
	accepted := int64(stressGoroutines/2) * stressTxPer * stressCents
	checkBalances := func(p *core.Provider, label string) {
		t.Helper()
		alice, err := p.Ledger().Balance("alice")
		if err != nil {
			t.Fatal(err)
		}
		bob, err := p.Ledger().Balance("bob")
		if err != nil {
			t.Fatal(err)
		}
		if alice+bob != stressFunds {
			t.Fatalf("%s: %d cents not conserved (alice %d + bob %d)", label, stressFunds-(alice+bob), alice, bob)
		}
		if bob != accepted {
			t.Fatalf("%s: bob = %d, want %d (lost or double-applied transfers)", label, bob, accepted)
		}
	}
	checkBalances(p, "live")
	if err := core.VerifyAuditChain(p.AuditLog().Entries()); err != nil {
		t.Fatalf("live audit chain: %v", err)
	}

	// Checkpoint, restart from the store, and check the restored
	// provider reproduces the live one and still deduplicates replays.
	if err := p.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(backend)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := core.RestoreProvider(cfg, st)
	if err != nil {
		t.Fatalf("restore after stress: %v", err)
	}
	p2.Verifier().ApprovePAL(core.ConfirmPALName, palMeas)
	p2.Verifier().ApprovePAL(core.PresencePALName, palMeas)
	checkBalances(p2, "restored")
	if err := core.VerifyAuditChain(p2.AuditLog().Entries()); err != nil {
		t.Fatalf("restored audit chain: %v", err)
	}
	for i, frame := range replays {
		resp, err := p2.Handle(frame)
		if err != nil {
			t.Fatalf("post-restart replay %d: %v", i, err)
		}
		out, err := decodeOutcome(resp)
		if err != nil || !out.Accepted {
			t.Fatalf("post-restart replay %d: %v %+v", i, err, out)
		}
	}
	checkBalances(p2, "after replays")
}
