// Package unitp is a faithful Go reproduction of "Uni-directional
// trusted path: Transaction confirmation on just one device" (Filyanov,
// McCune, Sadeghi, Winandy — DSN 2011).
//
// The paper's system lets a service provider verify that a *human* —
// not malware — approved exactly the transaction the provider holds,
// using only the user's one (compromised) computer: a DRTM late launch
// (AMD SKINIT / Intel TXT) runs a tiny confirmation PAL with exclusive
// keyboard ownership, the human's y/n lands in a TPM-bound measurement,
// and a TPM quote (or provisioned HMAC) proves it remotely.
//
// A Go process cannot late-launch code or own TPM localities, so the
// hardware layer is simulated with checkable fidelity (see DESIGN.md for
// the substitution table); all cryptography — PCR extend chains, quote
// signatures, sealed-blob encryption, certificates — is real.
//
// The facade exposes the full system:
//
//	d, err := unitp.NewDeployment(unitp.DeploymentConfig{Seed: 1})
//	user := unitp.DefaultUser(d.Rng.Fork("user"))
//	tx := &unitp.Transaction{ID: "t1", From: "alice", To: "bob",
//		AmountCents: 12_300, Currency: "EUR"}
//	user.Intend(tx)
//	user.AttachTo(d.Machine)
//	outcome, err := d.Client.SubmitTransaction(tx)
//
// See examples/ for runnable scenarios and cmd/tpbench for the
// experiment harness that regenerates every table and figure of the
// reconstructed evaluation.
package unitp
