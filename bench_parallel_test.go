// Parallel benchmarks for the request pipeline (DESIGN.md §11): the
// quote-confirm hot path under concurrent clients, against a real
// on-disk store so every commit pays a true fsync. These are the
// testing.B counterpart of experiment F12 — the pipeline arm amortizes
// syncs across in-flight requests via group commit, the single-lock arm
// pays one per request — reported as ns/op plus an avg reqs/commit
// metric showing the batching the drain achieved.
package unitp_test

import (
	"fmt"
	"os"
	"sync/atomic"
	"testing"

	"unitp/internal/attest"
	"unitp/internal/core"
	"unitp/internal/cryptoutil"
	"unitp/internal/sim"
	"unitp/internal/store"
	"unitp/internal/workload"
)

// newParallelBenchProvider builds a provider over a fresh on-disk store
// plus a synthetic platform to mint evidence (1024-bit keys: cheap
// client, full provider-side verification).
func newParallelBenchProvider(b *testing.B, serialize bool) (*core.Provider, *workload.SyntheticClient, func()) {
	b.Helper()
	caKey, err := cryptoutil.PooledKey(3201)
	if err != nil {
		b.Fatal(err)
	}
	ca := attest.NewPrivacyCA("bench-ca", caKey, nil, sim.NewRand(0xBE1))
	palMeas := cryptoutil.SHA1([]byte("bench-parallel-pal"))
	client, err := workload.NewSyntheticClient(ca, "bench-platform", palMeas,
		sim.NewRand(0xBE2), 1024)
	if err != nil {
		b.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "unitp-bench-*")
	if err != nil {
		b.Fatal(err)
	}
	backend, err := store.OpenDir(dir)
	if err != nil {
		os.RemoveAll(dir)
		b.Fatal(err)
	}
	st, err := store.Open(backend)
	if err != nil {
		os.RemoveAll(dir)
		b.Fatal(err)
	}
	p := core.NewProvider(core.ProviderConfig{
		Name:              "bench",
		CAPub:             ca.PublicKey(),
		Clock:             sim.WallClock{},
		Random:            sim.NewRand(0xBE3),
		SerializeRequests: serialize,
	})
	p.Verifier().ApprovePAL(core.ConfirmPALName, palMeas)
	if err := p.Ledger().CreateAccount("alice", 1<<40); err != nil {
		b.Fatal(err)
	}
	if err := p.Ledger().CreateAccount("bob", 0); err != nil {
		b.Fatal(err)
	}
	if err := p.AttachStore(st); err != nil {
		b.Fatal(err)
	}
	cleanup := func() {
		st.Close()
		os.RemoveAll(dir)
	}
	return p, client, cleanup
}

// mintParallelConfirms prepares n ready-to-drain ConfirmTx frames (the
// untimed prep: submit, receive challenge, sign confirmation).
func mintParallelConfirms(b *testing.B, p *core.Provider, client *workload.SyntheticClient, n int) [][]byte {
	b.Helper()
	frames := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		tx := &core.Transaction{ID: fmt.Sprintf("bench-%d", i), From: "alice", To: "bob",
			AmountCents: 1, Currency: "EUR"}
		req, err := core.EncodeMessage(&core.SubmitTx{Tx: tx})
		if err != nil {
			b.Fatal(err)
		}
		resp, err := p.Handle(req)
		if err != nil {
			b.Fatal(err)
		}
		msg, err := core.DecodeMessage(resp)
		if err != nil {
			b.Fatal(err)
		}
		ch, ok := msg.(*core.Challenge)
		if !ok {
			b.Fatalf("submit %d: got %T, want challenge", i, msg)
		}
		evidence, err := client.ConfirmEvidence(ch.Nonce, ch.Tx.Digest(), true)
		if err != nil {
			b.Fatal(err)
		}
		frame, err := core.EncodeMessage(&core.ConfirmTx{
			Nonce: ch.Nonce, Confirmed: true, Mode: core.ModeQuote, Evidence: evidence,
		})
		if err != nil {
			b.Fatal(err)
		}
		frames = append(frames, frame)
	}
	return frames
}

// benchQuoteConfirmParallel drains b.N pre-minted confirmations through
// Handle from 8 concurrent goroutines (RunParallel distributes exactly
// b.N iterations across them).
func benchQuoteConfirmParallel(b *testing.B, serialize bool) {
	p, client, cleanup := newParallelBenchProvider(b, serialize)
	defer cleanup()
	frames := mintParallelConfirms(b, p, client, b.N)
	// Minting runs through Handle too; diff the batch distribution so
	// the reported metric covers only the measured drain.
	before := p.CommitBatchSizes()
	var next atomic.Int64
	b.SetParallelism(8) // 8 goroutines even at GOMAXPROCS=1
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(next.Add(1)) - 1
			resp, err := p.Handle(frames[i])
			if err != nil {
				b.Fatal(err)
			}
			msg, err := core.DecodeMessage(resp)
			if err != nil {
				b.Fatal(err)
			}
			if out, ok := msg.(*core.Outcome); !ok || !out.Accepted {
				b.Fatalf("confirm %d: %+v", i, msg)
			}
		}
	})
	b.StopTimer()
	groups, commits := 0, 0
	for size, count := range p.CommitBatchSizes() {
		d := count - before[size]
		groups += size * d
		commits += d
	}
	if commits > 0 {
		b.ReportMetric(float64(groups)/float64(commits), "reqs/commit")
	}
}

// BenchmarkQuoteConfirmParallelPipeline is the concurrent engine:
// verify outside the lock, sharded sessions, WAL group commit.
func BenchmarkQuoteConfirmParallelPipeline(b *testing.B) {
	benchQuoteConfirmParallel(b, false)
}

// BenchmarkQuoteConfirmParallelSingleLock is the serialized baseline:
// one lock and one fsync per request.
func BenchmarkQuoteConfirmParallelSingleLock(b *testing.B) {
	benchQuoteConfirmParallel(b, true)
}
