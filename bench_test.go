// Benchmarks mirror the experiment index (DESIGN.md §4): one group per
// table/figure, measuring the *real compute* behind each — the virtual-
// clock harness (cmd/tpbench) reports the modelled hardware latencies,
// while these testing.B benches report what the host CPU actually pays
// for the cryptography, marshaling, and protocol logic.
package unitp_test

import (
	"fmt"
	"testing"

	"unitp"
	"unitp/internal/attest"
	"unitp/internal/captcha"
	"unitp/internal/core"
	"unitp/internal/cryptoutil"
	"unitp/internal/platform"
	"unitp/internal/sim"
	"unitp/internal/tpm"
	"unitp/internal/workload"
)

// newBenchTPM builds a started zero-latency TPM.
func newBenchTPM(b *testing.B) *tpm.TPM {
	b.Helper()
	dev, err := tpm.New(tpm.Config{Random: sim.NewRand(1)})
	if err != nil {
		b.Fatal(err)
	}
	if err := dev.Startup(); err != nil {
		b.Fatal(err)
	}
	return dev
}

// --- T1: TPM command compute costs ---

func BenchmarkTPMExtend(b *testing.B) {
	dev := newBenchTPM(b)
	m := cryptoutil.SHA1([]byte("measurement"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.Extend(0, 10, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTPMQuote(b *testing.B) {
	dev := newBenchTPM(b)
	aik, _, err := dev.CreateAIK()
	if err != nil {
		b.Fatal(err)
	}
	nonce := make([]byte, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.Quote(0, aik, nonce, []int{17, 23}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTPMSeal(b *testing.B) {
	dev := newBenchTPM(b)
	data := []byte("32-byte-long-hmac-key-material!!")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.SealCurrent(0, []int{17}, tpm.AllLocalities, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTPMUnseal(b *testing.B) {
	dev := newBenchTPM(b)
	blob, err := dev.SealCurrent(0, []int{17}, tpm.AllLocalities, []byte("secret"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.Unseal(0, blob); err != nil {
			b.Fatal(err)
		}
	}
}

// --- T2/T3: full sessions and end-to-end protocol ---

// newBenchDeployment builds a loopback, zero-latency deployment with an
// instant approving user.
func newBenchDeployment(b *testing.B, seed uint64) (*unitp.Deployment, *workload.TxStream) {
	b.Helper()
	d, err := unitp.NewDeployment(unitp.DeploymentConfig{
		Seed: seed,
		Link: unitp.LinkLoopback(),
		// Effectively unlimited funds: benchmarks run b.N transactions.
		Accounts: map[string]int64{"alice": 1 << 60, "bob": 0, "mallory": 0},
	})
	if err != nil {
		b.Fatal(err)
	}
	stream := unitp.NewTxStream(d.Rng.Fork("txs"), unitp.TxStreamConfig{
		From: "alice", MaxCents: 600,
	})
	return d, stream
}

// attachInstantApprover arms a zero-think-time user approving tx.
func attachInstantApprover(d *unitp.Deployment, tx *unitp.Transaction) {
	u := unitp.DefaultUser(d.Rng.Fork(tx.ID))
	u.Reaction = 0
	u.ReactionJitter = 0
	u.ReadTime = 0
	u.Intend(tx)
	u.AttachTo(d.Machine)
}

func BenchmarkConfirmSessionQuoteMode(b *testing.B) {
	d, stream := newBenchDeployment(b, 0xB1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, _ := stream.Next()
		attachInstantApprover(d, tx)
		outcome, err := d.Client.SubmitTransaction(tx)
		if err != nil {
			b.Fatal(err)
		}
		if !outcome.Accepted {
			b.Fatalf("rejected: %s", outcome.Reason)
		}
	}
}

func BenchmarkConfirmSessionHMACMode(b *testing.B) {
	d, stream := newBenchDeployment(b, 0xB2)
	if outcome, err := d.Client.ProvisionHMACKey(); err != nil || !outcome.Accepted {
		b.Fatalf("provision: %v / %+v", err, outcome)
	}
	if err := d.Client.SetMode(unitp.ModeHMAC); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, _ := stream.Next()
		attachInstantApprover(d, tx)
		outcome, err := d.Client.SubmitTransaction(tx)
		if err != nil {
			b.Fatal(err)
		}
		if !outcome.Accepted {
			b.Fatalf("rejected: %s", outcome.Reason)
		}
	}
}

func BenchmarkPresenceProof(b *testing.B) {
	d, _ := newBenchDeployment(b, 0xB3)
	u := unitp.DefaultUser(d.Rng.Fork("user"))
	u.Reaction = 0
	u.ReactionJitter = 0
	u.ReadTime = 0
	u.AttachTo(d.Machine)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outcome, err := d.Client.ProveHumanPresence()
		if err != nil {
			b.Fatal(err)
		}
		if !outcome.Accepted {
			b.Fatalf("rejected: %s", outcome.Reason)
		}
	}
}

func BenchmarkBatchConfirm8(b *testing.B) {
	d, stream := newBenchDeployment(b, 0xB4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txs := make([]unitp.Transaction, 8)
		intents := make([]unitp.Transaction, 8)
		for j := range txs {
			tx, _ := stream.Next()
			txs[j] = *tx
			intents[j] = *tx
		}
		u := unitp.DefaultUser(d.Rng.Fork(txs[0].ID))
		u.Reaction = 0
		u.ReactionJitter = 0
		u.ReadTime = 0
		u.IntendBatch(intents)
		u.AttachTo(d.Machine)
		outcome, _, err := d.Client.SubmitBatch(txs)
		if err != nil {
			b.Fatal(err)
		}
		if !outcome.Accepted {
			b.Fatalf("rejected: %s", outcome.Reason)
		}
	}
}

func BenchmarkLoginFlow(b *testing.B) {
	d, _ := newBenchDeployment(b, 0xB5)
	u := unitp.DefaultUser(d.Rng.Fork("user"))
	u.Reaction = 0
	u.ReactionJitter = 0
	u.ReadTime = 0
	u.Keystroke = 0
	u.AttachTo(d.Machine)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outcome, err := d.Client.Login("alice")
		if err != nil {
			b.Fatal(err)
		}
		if !outcome.Accepted {
			b.Fatalf("rejected: %s", outcome.Reason)
		}
	}
}

// --- F1: late-launch compute vs image size ---

func BenchmarkLateLaunchBySLBSize(b *testing.B) {
	for _, kb := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("%dKiB", kb), func(b *testing.B) {
			machine, err := platform.New(platform.Config{Random: sim.NewRand(2)})
			if err != nil {
				b.Fatal(err)
			}
			image := make([]byte, kb*1024)
			b.SetBytes(int64(len(image)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := machine.LateLaunch(image, func(*platform.LaunchEnv) error {
					return nil
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- F2: provider-side verification ---

// benchEvidence builds one genuine confirmation evidence plus its
// verifier and expectations.
func benchEvidence(b *testing.B) (*attest.Verifier, *attest.Evidence, attest.Expectations) {
	b.Helper()
	d, err := unitp.NewDeployment(unitp.DeploymentConfig{Seed: 0xF2, Link: unitp.LinkLoopback()})
	if err != nil {
		b.Fatal(err)
	}
	tx := &core.Transaction{ID: "bench", From: "alice", To: "bob",
		AmountCents: 100, Currency: "EUR"}
	nonce := attest.Nonce(cryptoutil.SHA1([]byte("bench-nonce")))
	binding := core.ConfirmationBinding(nonce, tx.Digest(), true)
	_, err = d.Machine.LateLaunch(core.ConfirmPALImage(), func(env *platform.LaunchEnv) error {
		if err := env.ResetPCR(tpm.PCRApp); err != nil {
			return err
		}
		_, err := env.Extend(tpm.PCRApp, binding)
		return err
	})
	if err != nil {
		b.Fatal(err)
	}
	quote, err := d.Machine.TPM().Quote(0, d.AIK, nonce[:], []int{tpm.PCRDRTM, tpm.PCRApp})
	if err != nil {
		b.Fatal(err)
	}
	v := attest.NewVerifier(d.CA.PublicKey())
	v.ApprovePAL(core.ConfirmPALName, cryptoutil.SHA1(core.ConfirmPALImage()))
	return v, &attest.Evidence{Cert: d.Cert, Quote: quote},
		attest.Expectations{Nonce: nonce, ExpectedPCR23: core.ExpectedAppPCR(binding)}
}

func BenchmarkVerifyEvidence(b *testing.B) {
	v, ev, want := benchEvidence(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Verify(ev, want); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyEvidenceParallel(b *testing.B) {
	v, ev, want := benchEvidence(b)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := v.Verify(ev, want); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- F3: forged-evidence rejection cost ---

func BenchmarkRejectForgedEvidence(b *testing.B) {
	v, ev, want := benchEvidence(b)
	forged := *ev
	forgedQuote := *ev.Quote
	forgedQuote.ExternalData[0] ^= 1 // replayed nonce
	forged.Quote = &forgedQuote
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Verify(&forged, want); err == nil {
			b.Fatal("forged evidence verified")
		}
	}
}

// --- F4: CAPTCHA baseline compute ---

func BenchmarkCaptchaRound(b *testing.B) {
	clock := sim.NewVirtualClock()
	rng := sim.NewRand(3)
	svc := captcha.NewService(rng.Fork("svc"))
	solver := captcha.HumanSolver()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch := svc.Issue()
		resp := solver.Attempt(clock, rng, ch)
		if _, err := svc.Answer(ch.ID, resp); err != nil {
			b.Fatal(err)
		}
	}
}

// --- F5: sealed-state chaining compute ---

func BenchmarkSealedStateSession(b *testing.B) {
	machine, err := platform.New(platform.Config{Random: sim.NewRand(4)})
	if err != nil {
		b.Fatal(err)
	}
	var blob *tpm.SealedBlob
	image := []byte("bench-chain-pal")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := machine.LateLaunch(image, func(env *platform.LaunchEnv) error {
			state := []byte{0}
			if blob != nil {
				loaded, err := env.Unseal(blob)
				if err != nil {
					return err
				}
				state = loaded
			}
			state[0]++
			newBlob, err := env.SealCurrent([]int{tpm.PCRDRTM}, tpm.MaskOf(2), state)
			if err != nil {
				return err
			}
			blob = newBlob
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- wire codecs (supporting all tables) ---

func BenchmarkEncodeDecodeConfirmTx(b *testing.B) {
	msg := &core.ConfirmTx{
		Confirmed: true,
		Mode:      core.ModeQuote,
		Evidence:  make([]byte, 700),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire, err := core.EncodeMessage(msg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.DecodeMessage(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuoteMarshalRoundTrip(b *testing.B) {
	dev := newBenchTPM(b)
	aik, _, err := dev.CreateAIK()
	if err != nil {
		b.Fatal(err)
	}
	quote, err := dev.Quote(0, aik, make([]byte, 20), []int{17, 23})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire := quote.Marshal()
		if _, err := tpm.UnmarshalQuote(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransactionDigest(b *testing.B) {
	tx := &core.Transaction{ID: "bench", From: "alice", To: "bob",
		AmountCents: 100, Currency: "EUR", Memo: "memo"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tx.Digest()
	}
}
