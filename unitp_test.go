package unitp_test

import (
	"testing"

	"unitp"
)

// TestFacadeQuickstart exercises the README's quickstart flow end to
// end through the public API only.
func TestFacadeQuickstart(t *testing.T) {
	d, err := unitp.NewDeployment(unitp.DeploymentConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	user := unitp.DefaultUser(d.Rng.Fork("user"))
	tx := &unitp.Transaction{
		ID: "quickstart-1", From: "alice", To: "bob",
		AmountCents: 12_300, Currency: "EUR", Memo: "rent",
	}
	user.Intend(tx)
	user.AttachTo(d.Machine)

	outcome, err := d.Client.SubmitTransaction(tx)
	if err != nil {
		t.Fatal(err)
	}
	if !outcome.Accepted || !outcome.Authentic {
		t.Fatalf("outcome = %+v", outcome)
	}
	if bal, _ := d.Provider.Ledger().Balance("bob"); bal != 12_300 {
		t.Fatalf("bob = %d", bal)
	}
}

func TestFacadeVendorAndLinkProfiles(t *testing.T) {
	if len(unitp.VendorProfiles()) != 4 {
		t.Fatal("vendor profiles")
	}
	if unitp.ProfileIdeal().Name != "Ideal" {
		t.Fatal("ideal profile")
	}
	if unitp.LinkBroadband().Latency <= unitp.LinkLAN().Latency {
		t.Fatal("link ordering")
	}
	if len(unitp.CaptchaSolvers()) == 0 {
		t.Fatal("captcha solvers")
	}
	if len(unitp.AllAttacks()) != 10 {
		t.Fatal("attack suite")
	}
	if !unitp.AllProtections().MeasuredLaunch {
		t.Fatal("protections")
	}
}

func TestFacadeHMACMode(t *testing.T) {
	d, err := unitp.NewDeployment(unitp.DeploymentConfig{
		Seed:       2,
		TPMProfile: unitp.ProfileInfineon(),
		Link:       unitp.LinkLAN(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if outcome, err := d.Client.ProvisionHMACKey(); err != nil || !outcome.Accepted {
		t.Fatalf("provision: %v / %+v", err, outcome)
	}
	if err := d.Client.SetMode(unitp.ModeHMAC); err != nil {
		t.Fatal(err)
	}
	user := unitp.DefaultUser(d.Rng.Fork("user"))
	stream := unitp.NewTxStream(d.Rng.Fork("txs"), unitp.TxStreamConfig{From: "alice"})
	for i := 0; i < 3; i++ {
		tx, _ := stream.Next()
		user.Intend(tx)
		user.AttachTo(d.Machine)
		outcome, err := d.Client.SubmitTransaction(tx)
		if err != nil {
			t.Fatal(err)
		}
		if !outcome.Accepted {
			t.Fatalf("tx %d: %+v", i, outcome)
		}
	}
}
