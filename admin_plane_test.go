package unitp_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"unitp/internal/netsim"
	"unitp/internal/obs"
	"unitp/internal/workload"
)

// TestAdminPlaneLiveWorkload stands up the admin HTTP plane over a live
// deployment and polls it WHILE a workload goroutine drives trusted-path
// sessions — the endpoints must serve consistent, moving values under
// concurrent instrumentation writes, and the final numbers must agree
// with what the workload actually did.
func TestAdminPlaneLiveWorkload(t *testing.T) {
	registry := obs.NewRegistry()
	tracer := obs.NewTracer(64)
	d, err := workload.NewDeployment(workload.DeploymentConfig{
		Seed:     0xAD41,
		Link:     netsim.LinkLoopback(),
		Accounts: map[string]int64{"alice": 1 << 40, "bob": 0, "mallory": 0},
		Metrics:  registry,
		Tracer:   tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	mux := obs.NewAdminMux(obs.AdminConfig{
		Metrics:   registry,
		Tracer:    tracer,
		Readiness: d.Provider.Health,
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	const txCount = 12
	var confirmed atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		stream := workload.NewTxStream(d.Rng.Fork("txs"), workload.TxStreamConfig{From: "alice"})
		user := workload.DefaultUser(d.Rng.Fork("user"))
		user.AttachTo(d.Machine)
		for i := 0; i < txCount; i++ {
			tx, _ := stream.Next()
			user.Intend(tx)
			outcome, err := d.Client.SubmitTransaction(tx)
			if err != nil {
				t.Errorf("session %d: %v", i, err)
				return
			}
			if outcome.Accepted {
				confirmed.Add(1)
			}
		}
	}()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, body
	}

	// Hammer the plane while the workload runs: every response must be
	// well-formed regardless of where the writers are mid-session.
	polls := 0
	for {
		select {
		case <-done:
		default:
			if code, body := get("/healthz"); code != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
				t.Fatalf("/healthz mid-workload: %d %q", code, body)
			}
			if code, body := get("/metrics"); code != http.StatusOK || !json.Valid(body) {
				t.Fatalf("/metrics mid-workload: %d (valid JSON: %v)", code, json.Valid(body))
			}
			polls++
			continue
		}
		break
	}
	if polls == 0 {
		t.Error("workload finished before a single poll — not concurrent")
	}

	// Final state: the plane's numbers must match the workload's.
	code, body := get("/readyz")
	var ready obs.Readiness
	if err := json.Unmarshal(body, &ready); err != nil || code != http.StatusOK || !ready.Ready {
		t.Fatalf("/readyz: %d %s (err %v)", code, body, err)
	}

	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	var payload struct {
		Counters   map[string]int64          `json:"counters"`
		Gauges     map[string]int64          `json:"gauges"`
		Histograms map[string]map[string]any `json:"histograms"`
		Tracer     obs.TracerStats           `json:"tracer"`
	}
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatalf("/metrics: %v", err)
	}
	if got := payload.Counters["provider.outcome.confirmed"]; got != confirmed.Load() {
		t.Errorf("provider.outcome.confirmed = %d, workload confirmed %d", got, confirmed.Load())
	}
	if got := payload.Counters["provider.submitted"]; got != txCount {
		t.Errorf("provider.submitted = %d, want %d", got, txCount)
	}
	if _, ok := payload.Gauges["provider.inflight"]; !ok {
		t.Error("gauge provider.inflight missing")
	}
	if payload.Histograms["net.rtt"] == nil {
		t.Error("histogram net.rtt missing")
	}
	if payload.Tracer.Finished != txCount {
		t.Errorf("tracer finished %d sessions, want %d", payload.Tracer.Finished, txCount)
	}

	if code, body := get("/metrics?format=text"); code != http.StatusOK ||
		!strings.Contains(string(body), "provider.outcome.confirmed") {
		t.Errorf("/metrics?format=text: %d, missing counter table", code)
	}

	code, body = get("/trace?n=4")
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &trace); err != nil || code != http.StatusOK {
		t.Fatalf("/trace: %d (err %v)", code, err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Error("/trace: no events for completed sessions")
	}
}
