package unitp_test

import (
	"bufio"
	"bytes"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestTCPLoopbackSmoke is the CI smoke for the real wire transport: it
// builds the actual cmd/tpserver and cmd/tpclient binaries, confirms
// one payment over loopback TCP, then SIGTERMs the server and asserts a
// clean graceful drain — the same two-terminal flow the README
// documents, unattended.
func TestTCPLoopbackSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP loopback smoke skipped in short mode")
	}
	bin := t.TempDir()
	for _, name := range []string{"tpserver", "tpclient"} {
		build := exec.Command("go", "build", "-o", filepath.Join(bin, name), "./cmd/"+name)
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, out)
		}
	}

	// Start the server on an ephemeral port and scrape the bound
	// address from its "listening" log line.
	server := exec.Command(filepath.Join(bin, "tpserver"), "-addr", "127.0.0.1:0")
	stderr, err := server.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Start(); err != nil {
		t.Fatalf("start tpserver: %v", err)
	}
	defer server.Process.Kill()

	var logMu sync.Mutex
	var serverLog bytes.Buffer
	addrCh := make(chan string, 1)
	addrRe := regexp.MustCompile(`msg=listening.*addr=(\S+)`)
	go func() {
		scanner := bufio.NewScanner(stderr)
		for scanner.Scan() {
			line := scanner.Text()
			logMu.Lock()
			serverLog.WriteString(line + "\n")
			logMu.Unlock()
			if m := addrRe.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(20 * time.Second):
		t.Fatal("tpserver never logged its listening address")
	}

	// One scripted confirmation through the real stack: enroll, submit,
	// PAL approves, outcome comes back authentic.
	client := exec.Command(filepath.Join(bin, "tpclient"),
		"-server", addr, "-decision", "y", "-tpm", "Ideal")
	out, err := client.CombinedOutput()
	if err != nil {
		t.Fatalf("tpclient: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "accepted=true") ||
		!strings.Contains(string(out), "authentic=true") {
		t.Fatalf("confirmation did not land:\n%s", out)
	}

	// Graceful drain: SIGTERM, clean exit, and the shutdown-complete
	// marker in the log.
	if err := server.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("signal: %v", err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- server.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			logMu.Lock()
			logs := serverLog.String()
			logMu.Unlock()
			t.Fatalf("tpserver exited dirty: %v\n%s", err, logs)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("tpserver did not exit after SIGTERM")
	}
	logMu.Lock()
	logs := serverLog.String()
	logMu.Unlock()
	if !strings.Contains(logs, "shutdown complete") {
		t.Fatalf("no clean drain marker in server log:\n%s", logs)
	}
}
