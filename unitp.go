package unitp

import (
	"unitp/internal/attest"
	"unitp/internal/captcha"
	"unitp/internal/core"
	"unitp/internal/netsim"
	"unitp/internal/platform"
	"unitp/internal/sim"
	"unitp/internal/tpm"
	"unitp/internal/workload"
)

// Protocol types.
type (
	// Transaction is one payment order; its canonical digest is what
	// the human's confirmation is cryptographically bound to.
	Transaction = core.Transaction

	// Outcome is the provider's final answer for a submission,
	// confirmation, presence proof, or provisioning exchange.
	Outcome = core.Outcome

	// Client is the client-side protocol engine.
	Client = core.Client

	// Provider is the service-provider engine (ledger, challenges,
	// verification).
	Provider = core.Provider

	// ProviderConfig configures a Provider.
	ProviderConfig = core.ProviderConfig

	// ClientConfig configures a Client.
	ClientConfig = core.ClientConfig

	// ProviderStats counts protocol outcomes.
	ProviderStats = core.ProviderStats

	// ConfirmMode selects quote-per-transaction or provisioned-HMAC
	// confirmation.
	ConfirmMode = core.ConfirmMode

	// Ledger is the provider's account store.
	Ledger = core.Ledger

	// AuditLog is the provider's hash-chained confirmation record.
	AuditLog = core.AuditLog

	// AuditEntry is one confirmed-transaction record.
	AuditEntry = core.AuditEntry

	// AuditReport summarizes an independent auditor replay.
	AuditReport = core.AuditReport
)

// ReplayAudit independently re-verifies a provider's audit log against
// an attestation policy (dispute resolution / non-repudiation).
var ReplayAudit = core.ReplayAudit

// Confirmation modes.
const (
	// ModeQuote authenticates each confirmation with a TPM quote.
	ModeQuote = core.ModeQuote

	// ModeHMAC authenticates with an HMAC under a provisioned,
	// PAL-sealed key.
	ModeHMAC = core.ModeHMAC
)

// Deployment types.
type (
	// Deployment is a complete simulated system: client machine, OS,
	// privacy CA, provider, and the network between them.
	Deployment = workload.Deployment

	// DeploymentConfig parameterizes a Deployment.
	DeploymentConfig = workload.DeploymentConfig

	// User models the human at the keyboard.
	User = workload.User

	// TxStream generates deterministic transaction workloads.
	TxStream = workload.TxStream

	// TxStreamConfig parameterizes a TxStream.
	TxStreamConfig = workload.TxStreamConfig

	// Attack is one adversarial strategy of the security evaluation.
	Attack = workload.Attack

	// AttackResult reports one attack execution.
	AttackResult = workload.AttackResult

	// PopulationConfig parameterizes a multi-client fraud simulation.
	PopulationConfig = workload.PopulationConfig

	// PopulationResult aggregates a population run's outcomes.
	PopulationResult = workload.PopulationResult
)

// RunPopulation simulates a provider serving a population of clients, a
// fraction infected with transaction generators, with or without the
// trusted path.
func RunPopulation(cfg PopulationConfig) (*PopulationResult, error) {
	return workload.RunPopulation(cfg)
}

// DefaultPIN is the PIN enrolled for alice in default deployments.
const DefaultPIN = workload.DefaultPIN

// Platform types.
type (
	// Machine is one simulated client platform (CPU with DRTM, TPM,
	// devices, memory).
	Machine = platform.Machine

	// Protections lists the platform security properties; the security
	// evaluation ablates them one at a time.
	Protections = platform.Protections

	// TPMProfile models the command latencies of a discrete TPM chip.
	TPMProfile = tpm.Profile

	// Link models a network path's latency, jitter, and loss.
	Link = netsim.Link

	// Rand is the deterministic random source used throughout the
	// simulation.
	Rand = sim.Rand

	// Nonce is a single-use challenge value.
	Nonce = attest.Nonce

	// CaptchaSolver models a CAPTCHA-solving population (the F4
	// baseline).
	CaptchaSolver = captcha.Solver
)

// NewDeployment wires a full client+provider deployment.
func NewDeployment(cfg DeploymentConfig) (*Deployment, error) {
	return workload.NewDeployment(cfg)
}

// DefaultUser returns a reasonably attentive human model.
func DefaultUser(rng *Rand) *User { return workload.DefaultUser(rng) }

// CarelessUser returns a human who blindly confirms a fraction of
// prompts.
func CarelessUser(rng *Rand, carelessProb float64) *User {
	return workload.CarelessUser(rng, carelessProb)
}

// NewRand returns a deterministic random source for the given seed.
func NewRand(seed uint64) *Rand { return sim.NewRand(seed) }

// NewTxStream builds a deterministic transaction workload.
func NewTxStream(rng *Rand, cfg TxStreamConfig) *TxStream {
	return workload.NewTxStream(rng, cfg)
}

// AllAttacks returns the security evaluation's strategy suite.
func AllAttacks() []Attack { return workload.AllAttacks() }

// AllProtections returns the full protection set of a correct platform.
func AllProtections() Protections { return platform.AllProtections() }

// TPM vendor latency profiles (era-plausible discrete TPM v1.2 chips; see
// internal/tpm for the sources of the figures).
var (
	// ProfileIdeal is a zero-latency TPM for functional tests.
	ProfileIdeal = tpm.ProfileIdeal

	// ProfileInfineon has the fastest quote of the cohort.
	ProfileInfineon = tpm.ProfileInfineon

	// ProfileSTM is a mid-range chip.
	ProfileSTM = tpm.ProfileSTM

	// ProfileAtmel is a mid-range chip with slow unseal.
	ProfileAtmel = tpm.ProfileAtmel

	// ProfileBroadcom has the slowest quote and unseal.
	ProfileBroadcom = tpm.ProfileBroadcom

	// VendorProfiles lists the four vendor profiles in table order.
	VendorProfiles = tpm.VendorProfiles
)

// Network link profiles.
var (
	// LinkLoopback models in-host communication.
	LinkLoopback = netsim.LinkLoopback

	// LinkLAN models a local network.
	LinkLAN = netsim.LinkLAN

	// LinkBroadband models 2011-era consumer broadband.
	LinkBroadband = netsim.LinkBroadband

	// LinkWAN models an intercontinental path.
	LinkWAN = netsim.LinkWAN

	// LinkMobile models a 3G mobile path.
	LinkMobile = netsim.LinkMobile
)

// CaptchaSolvers returns the modelled CAPTCHA solver population (human,
// OCR bots, solver farm).
func CaptchaSolvers() []CaptchaSolver { return captcha.Solvers() }
