GO ?= go

.PHONY: all vet build test race check bench results clean

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the full gate: vet, build, tests with and without the race
# detector.
check: vet build test race

bench:
	$(GO) test -bench=. -benchmem .

# results regenerates every table/figure into results/.
results:
	$(GO) run ./cmd/tpbench -save results

clean:
	$(GO) clean ./...
