GO ?= go

.PHONY: all vet build test race check bench bench-smoke results clean

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the full gate: vet, build, tests with and without the race
# detector.
check: vet build test race

bench:
	$(GO) test -bench=. -benchmem .

# bench-smoke runs every benchmark exactly once — not for numbers, but
# to keep the benchmark code (including the parallel pipeline drains,
# which exercise real on-disk group commits) compiling and passing.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x ./...

# results regenerates every table/figure into results/.
results:
	$(GO) run ./cmd/tpbench -save results

clean:
	$(GO) clean ./...
