GO ?= go

.PHONY: all vet build test race check bench bench-crypto bench-smoke chaos-smoke results clean

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the full gate: vet, build, tests with and without the race
# detector, plus one pass of every benchmark (bench-smoke) so the
# measurement code stays honest.
check: vet build test race bench-smoke

bench:
	$(GO) test -bench=. -benchmem .

# bench-crypto compares the provider-side cost of one confirmed
# transaction under each crypto profile (RSA, Ed25519, batched Ed25519)
# against the attested-session HMAC fast path, then runs the F16
# scheme × re-quote-interval sweep itself (CI-sized: 400 confirms per
# cell, a few seconds of wall time) so the speedup and crossover
# verdicts are checked, not just the micro-numbers behind them.
bench-crypto:
	$(GO) test -bench='BenchmarkConfirm(RSA|Ed25519|Ed25519Batch|SessionHMAC)$$' -benchmem -run xxx .
	$(GO) run ./cmd/tpbench -exp f16

# bench-smoke runs every benchmark exactly once — not for numbers, but
# to keep the benchmark code (including the parallel pipeline drains,
# which exercise real on-disk group commits) compiling and passing.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x ./...

# chaos-smoke is the truncated chaos gate: the F13 kill-a-shard sweep
# (every kill-phase cell plus a primary killed under concurrent load),
# the F14 TCP chaos matrix (resets, corruption, truncation, partition,
# slowloris, and overload shedding over real sockets), and the F15
# multi-process cell (router + one shard primary + follower as real
# child processes, one SIGKILL failover mid-drain, exactly-once audited
# from the survivors' data directories), failing on any lost or doubled
# transaction, broken audit chain, or unexpected failover count.
chaos-smoke:
	$(GO) test ./internal/experiments -run 'TestF13ChaosSmoke|TestF13MatrixCells|TestF13KillUnderLoadExactlyOnce|TestF14ChaosSmoke|TestF14ChaosCellsExactlyOnce|TestF15ProcSmoke' -count=1 -v

# results regenerates every table/figure into results/.
results:
	$(GO) run ./cmd/tpbench -save results

clean:
	$(GO) clean ./...
