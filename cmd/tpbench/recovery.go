package main

import (
	"fmt"
	"os"
	"time"

	"unitp/internal/store"
	"unitp/internal/workload"
)

// runRecoveryBench measures restart-recovery cost: it journals txCount
// confirmed transactions against a store with snapshotting disabled (so
// every group commit lands in the WAL), then restarts the provider and
// reports how fast the WAL tail replays. This is the worst case — any
// positive snapshot interval replays a strictly shorter tail.
func runRecoveryBench(txCount int) int {
	if txCount < 1 {
		fmt.Fprintln(os.Stderr, "tpbench: -recovery-txs must be positive")
		return 2
	}
	backend := store.NewMemBackend()
	d, err := workload.NewDeployment(workload.DeploymentConfig{
		Seed:    0xBE7C,
		Backend: backend,
		// SnapshotEvery 0: never rotate, so recovery replays everything.
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tpbench: recovery bench setup: %v\n", err)
		return 1
	}
	stream := workload.NewTxStream(d.Rng.Fork("txs"), workload.TxStreamConfig{From: "alice"})
	user := workload.DefaultUser(d.Rng.Fork("user"))
	user.AttachTo(d.Machine)

	fmt.Printf("journaling %d confirmed transactions (snapshotting disabled)...\n", txCount)
	fill := time.Now()
	for i := 0; i < txCount; i++ {
		tx, _ := stream.Next()
		tx.AmountCents = 1 // keep alice solvent at any txCount
		user.Intend(tx)
		outcome, err := d.Client.SubmitTransaction(tx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tpbench: recovery bench tx %d: %v\n", i, err)
			return 1
		}
		if !outcome.Accepted {
			fmt.Fprintf(os.Stderr, "tpbench: recovery bench tx %d rejected: %s\n", i, outcome.Reason)
			return 1
		}
	}
	fillTime := time.Since(fill)

	start := time.Now()
	if err := d.RestartProvider(); err != nil {
		fmt.Fprintf(os.Stderr, "tpbench: recovery bench restart: %v\n", err)
		return 1
	}
	elapsed := time.Since(start)
	stats := d.Provider.Store().Stats()
	if stats.RecoveredRecords == 0 {
		fmt.Fprintln(os.Stderr, "tpbench: recovery bench replayed zero records")
		return 1
	}
	perSec := float64(stats.RecoveredRecords) / elapsed.Seconds()
	fmt.Printf("journal fill:     %d transactions in %v\n", txCount, fillTime.Round(time.Millisecond))
	fmt.Printf("WAL replayed:     %d group records (%d bytes recovered)\n",
		stats.RecoveredRecords, stats.RecoveredBytes)
	fmt.Printf("recovery time:    %v (snapshot load + WAL replay + audit re-verify)\n",
		elapsed.Round(time.Microsecond))
	fmt.Printf("replay throughput: %.0f records/sec\n", perSec)
	return 0
}
