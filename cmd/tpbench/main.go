// Command tpbench regenerates every table and figure of the
// reconstructed evaluation (DESIGN.md §4 / EXPERIMENTS.md).
//
// Usage:
//
//	tpbench                 # run everything
//	tpbench -exp t1         # one experiment (t1, t2, t3, f1..f14)
//	tpbench -list           # list experiments
//	tpbench -save results   # also write each result to results/<id>.txt
//	tpbench -recovery       # benchmark WAL replay throughput (records/sec)
//	tpbench -trace out.json # traced chaos run, Chrome trace_event JSON (Perfetto)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"unitp/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp      = flag.String("exp", "all", "experiment to run (all, t1, t2, t3, f1..f15)")
		list     = flag.Bool("list", false, "list experiments and exit")
		save     = flag.String("save", "", "directory to write per-experiment result files into")
		recovery = flag.Bool("recovery", false, "benchmark WAL replay throughput instead of running experiments")
		recTxs   = flag.Int("recovery-txs", 200, "transactions to journal before the recovery benchmark")
		traceOut = flag.String("trace", "", "run a traced chaos workload and write Chrome trace_event JSON (Perfetto-loadable) to this file")
	)
	flag.Parse()

	if *recovery {
		return runRecoveryBench(*recTxs)
	}

	if *traceOut != "" {
		return runTraced(*traceOut)
	}

	if *save != "" {
		if err := os.MkdirAll(*save, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "tpbench: -save: %v\n", err)
			return 1
		}
	}

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-4s %s\n", r.ID, r.Title)
		}
		return 0
	}

	runners := experiments.All()
	if *exp != "all" {
		r, ok := experiments.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "tpbench: unknown experiment %q (try -list)\n", *exp)
			return 2
		}
		runners = []experiments.Runner{r}
	}

	for _, r := range runners {
		fmt.Printf("==== %s: %s ====\n", r.ID, r.Title)
		start := time.Now()
		result, err := r.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tpbench: %s failed: %v\n", r.ID, err)
			return 1
		}
		fmt.Println(result.Text)
		fmt.Printf("(%s completed in %v real time)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
		if *save != "" {
			path := filepath.Join(*save, r.ID+".txt")
			body := fmt.Sprintf("%s: %s\n\n%s", r.ID, r.Title, result.Text)
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "tpbench: write %s: %v\n", path, err)
				return 1
			}
		}
	}
	return 0
}

// runTraced runs the F11 chaos workload with the tracer attached and
// writes the sessions as Chrome trace_event JSON for Perfetto.
func runTraced(path string) int {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tpbench: -trace: %v\n", err)
		return 1
	}
	defer f.Close()
	summary, err := experiments.RunTracedChaos(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tpbench: -trace: %v\n", err)
		return 1
	}
	fmt.Println(summary)
	fmt.Printf("wrote Chrome trace to %s (open in https://ui.perfetto.dev or chrome://tracing)\n", path)
	return 0
}
