// Command tpclient runs the client side of the uni-directional trusted
// path over real TCP against cmd/tpserver: it boots a simulated
// DRTM-capable machine, enrolls with the server's CA, submits a
// transaction, and drives the confirmation PAL — with you as the human,
// or with a scripted decision.
//
// The connection is supervised by internal/wire: if the server resets,
// drains, or sheds the connection, in-flight requests fail fast with
// retryable errors, the retry transport backs off, and the supervisor
// redials (re-running the idempotent enrollment handshake) under capped
// exponential backoff with jitter.
//
// Usage:
//
//	tpclient -server localhost:7700 -to bob -amount 12300 -decision ask
package main

import (
	"bufio"
	"crypto/rsa"
	"crypto/x509"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
	"time"

	"unitp/internal/attest"
	"unitp/internal/core"
	"unitp/internal/cryptoutil"
	"unitp/internal/flicker"
	"unitp/internal/netsim"
	"unitp/internal/obs"
	"unitp/internal/platform"
	"unitp/internal/sim"
	"unitp/internal/tpm"
	"unitp/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("tpclient: %v", err)
	}
}

func run() error {
	var (
		server   = flag.String("server", "localhost:7700", "tpserver address")
		to       = flag.String("to", "bob", "payee account")
		amount   = flag.Int64("amount", 12_300, "amount in cents")
		decision = flag.String("decision", "ask", "confirmation decision: y, n, or ask (interactive)")
		vendor   = flag.String("tpm", "Infineon", "TPM vendor profile (Ideal, Infineon, STMicro, Atmel, Broadcom)")
		presence = flag.Bool("presence", false, "run the human-presence (captcha replacement) flow instead")
		login    = flag.String("login", "", "run the secure PIN login flow for this username instead")
		pin      = flag.String("pin", "2468", "PIN typed at the trusted prompt (login flow, scripted mode)")
		traceOut = flag.String("trace", "", "write a Chrome trace_event JSON of this run's sessions to this file (load in Perfetto)")
	)
	flag.Parse()

	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer(64)
		defer func() {
			f, err := os.Create(*traceOut)
			if err != nil {
				log.Printf("tpclient: trace: %v", err)
				return
			}
			defer f.Close()
			if err := obs.WriteChromeTrace(f, tracer.Completed(0)); err != nil {
				log.Printf("tpclient: trace: %v", err)
				return
			}
			log.Printf("tpclient: wrote trace to %s (%d sessions)", *traceOut, len(tracer.Completed(0)))
		}()
	}

	profile, err := profileByName(*vendor)
	if err != nil {
		return err
	}
	// Wall clock: the modelled TPM latencies are actually felt, so the
	// demo conveys the paper's timing story.
	machine, err := platform.New(platform.Config{
		Clock:      sim.WallClock{},
		Random:     sim.NewRand(uint64(time.Now().UnixNano())),
		TPMProfile: profile,
	})
	if err != nil {
		return err
	}
	aik, aikPub, err := machine.TPM().CreateAIK()
	if err != nil {
		return err
	}

	// The supervised connection re-runs this handshake on every
	// (re)dial; the platform ID is stable for the process, so the server
	// treats a reconnect as the same enrolled device (idempotent enroll,
	// same-EK certify).
	platformID := fmt.Sprintf("platform-%d", os.Getpid())
	var cert *attest.AIKCert
	registry := obs.NewRegistry()
	defer func() {
		// Surface what supervision had to do: silence means a clean run.
		snap := registry.Snapshot()
		if snap.Counters["wire.client.conn_failures"]+snap.Counters["wire.client.dial_failures"] > 0 {
			log.Printf("tpclient: supervision: reconnects=%d conn_failures=%d dial_failures=%d handshake_failures=%d",
				snap.Counters["wire.client.reconnects"], snap.Counters["wire.client.conn_failures"],
				snap.Counters["wire.client.dial_failures"], snap.Counters["wire.client.handshake_failures"])
		}
	}()
	supervised := wire.NewClient(wire.ClientConfig{
		Addr:    *server,
		Metrics: registry,
		Handshake: func(conn net.Conn) error {
			c, err := enroll(conn, platformID, machine, aikPub)
			if err != nil {
				return err
			}
			cert = c
			return nil
		},
	})
	defer supervised.Close()
	if err := supervised.Connect(); err != nil {
		return err
	}
	log.Printf("tpclient: enrolled as %s with CA %s", cert.PlatformID, cert.Issuer)

	// Real TCP still loses frames and drops connections; the retry
	// transport masks transient failures with backoff and a deadline,
	// while the wire supervisor paces the redials underneath.
	transport := netsim.NewRetryTransport(supervised,
		netsim.DefaultRetryPolicy(), sim.WallClock{}, sim.NewRand(uint64(time.Now().UnixNano())^0x7e7))
	transport.Observe(nil, tracer)
	client, err := core.NewClient(core.ClientConfig{
		Manager:   flicker.NewManager(machine),
		Transport: transport,
		AIK:       aik,
		Cert:      cert,
		Tracer:    tracer,
	})
	if err != nil {
		return err
	}

	machine.SetInputPump(humanPump(machine, *decision))

	if *login != "" {
		machine.SetInputPump(pinPump(machine, *pin))
		outcome, err := client.Login(*login)
		if err != nil {
			return err
		}
		log.Printf("tpclient: login outcome: accepted=%v token=%s reason=%s",
			outcome.Accepted, outcome.Token, outcome.Reason)
		return nil
	}

	if *presence {
		outcome, err := client.ProveHumanPresence()
		if err != nil {
			return err
		}
		log.Printf("tpclient: presence outcome: accepted=%v token=%s reason=%s",
			outcome.Accepted, outcome.Token, outcome.Reason)
		return nil
	}

	tx := &core.Transaction{
		ID:          fmt.Sprintf("cli-%d", time.Now().Unix()),
		From:        "alice",
		To:          *to,
		AmountCents: *amount,
		Currency:    "EUR",
		Memo:        "tpclient demo",
	}
	log.Printf("tpclient: submitting %s", tx.Summary())
	start := time.Now()
	outcome, err := client.SubmitTransaction(tx)
	if err != nil {
		return err
	}
	log.Printf("tpclient: outcome: accepted=%v authentic=%v reason=%q (%v end to end)",
		outcome.Accepted, outcome.Authentic, outcome.Reason, time.Since(start).Round(time.Millisecond))
	return nil
}

// enroll performs the demo enrollment handshake with tpserver. A server
// refusal (shed, draining) arrives as an error frame, which
// ReadHandshakeFrame surfaces as a classified RemoteError so the
// supervisor treats it like any other transient failure.
func enroll(conn net.Conn, platformID string, machine *platform.Machine, aikPub *rsa.PublicKey) (*attest.AIKCert, error) {
	b := cryptoutil.NewBuffer(600)
	b.PutString(platformID)
	b.PutBytes(x509.MarshalPKCS1PublicKey(machine.TPM().EK()))
	b.PutBytes(x509.MarshalPKCS1PublicKey(aikPub))
	if err := netsim.WriteFrame(conn, b.Bytes()); err != nil {
		return nil, err
	}
	certBytes, err := wire.ReadHandshakeFrame(conn)
	if err != nil {
		return nil, err
	}
	return attest.UnmarshalAIKCert(certBytes)
}

// humanPump builds the PAL's input source: scripted y/n or the actual
// human at this terminal.
func humanPump(machine *platform.Machine, decision string) platform.InputPump {
	answered := false
	return func() bool {
		if answered {
			return false
		}
		answered = true
		switch decision {
		case "y", "n":
			machine.Keyboard().Press(rune(decision[0]))
			return true
		default:
			lines := machine.Display().Lines()
			if len(lines) > 0 {
				fmt.Printf("\n┌─ TRUSTED DISPLAY "+strings.Repeat("─", 40)+"\n│ %s\n└%s\n",
					lines[len(lines)-1].Text, strings.Repeat("─", 58))
			}
			fmt.Print("confirm? [y/n]: ")
			reader := bufio.NewReader(os.Stdin)
			line, err := reader.ReadString('\n')
			if err != nil || len(strings.TrimSpace(line)) == 0 {
				return false
			}
			machine.Keyboard().Press(rune(strings.TrimSpace(line)[0]))
			return true
		}
	}
}

// pinPump types a scripted PIN at the trusted prompt.
func pinPump(machine *platform.Machine, pin string) platform.InputPump {
	answered := false
	return func() bool {
		if answered {
			return false
		}
		answered = true
		for _, r := range pin {
			machine.Keyboard().Press(r)
		}
		machine.Keyboard().Press('\n')
		return true
	}
}

func profileByName(name string) (tpm.Profile, error) {
	for _, p := range append(tpm.VendorProfiles(), tpm.ProfileIdeal()) {
		if strings.EqualFold(p.Name, name) {
			return p, nil
		}
	}
	return tpm.Profile{}, fmt.Errorf("unknown TPM profile %q", name)
}
