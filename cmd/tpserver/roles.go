// Distributed fleet roles: -role router|primary|follower|supervisor run
// the fleet's pieces as separate OS processes connected by the wire
// transport. A node process (primary or follower) is one shard member:
// it serves the role handshake on its listener and switches between
// primary and follower as the fencing protocol demands. The router
// process fronts remote shards over the wire and supervises them with a
// warden. The supervisor is a local convenience: it spawns a whole
// fleet (router + every member) as child processes and restarts the
// ones that die.
//
// Usage:
//
//	tpserver -role follower -addr :7711 -shard-index 0 -member 1 -data /var/lib/tp/s0m1
//	tpserver -role primary  -addr :7710 -shard-index 0 -member 0 -peers 1=:7711 -data /var/lib/tp/s0m0
//	tpserver -role router   -addr :7700 -fleet "0=:7710,1=:7711" -admin :7701
//	tpserver -role supervisor -addr :7700 -shards 2 -followers 1 -data /var/lib/tpfleet -admin :7701
package main

import (
	"crypto/rand"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"unitp/internal/attest"
	"unitp/internal/core"
	"unitp/internal/cryptoutil"
	"unitp/internal/fleet"
	"unitp/internal/netsim"
	"unitp/internal/obs"
	"unitp/internal/sim"
	"unitp/internal/store"
	"unitp/internal/wire"
)

// roleParams carries the flag values every role shares plus the
// role-specific ones.
type roleParams struct {
	role      string
	addr      string
	adminAddr string
	dataDir   string
	threshold int64
	snapEvery int
	workers   int
	logger    *slog.Logger

	// crypto profile + attested-session limits (all roles)
	scheme     cryptoutil.Scheme
	sessMaxTx  uint32
	sessMaxAge time.Duration

	// node roles
	shardIndex   int
	member       int
	epoch        uint64
	peers        string
	killBefore   uint64
	killAfter    uint64
	seedAccounts int

	// router role
	fleetSpec   string
	healthEvery time.Duration

	// supervisor role
	shards    int
	followers int
}

// runRole dispatches the non-single roles.
func runRole(p roleParams) error {
	switch p.role {
	case "primary", "follower":
		return runNode(p)
	case "router":
		return runRouter(p)
	case "supervisor":
		return runSupervisor(p)
	default:
		return fmt.Errorf("unknown -role %q (single, primary, follower, router, supervisor)", p.role)
	}
}

// runNode runs one shard member process. The starting role only matters
// for a virgin data dir; after that the durable node manifest decides,
// and the fencing protocol moves the member between roles at runtime.
func runNode(p roleParams) error {
	peers, err := parsePeers(p.peers)
	if err != nil {
		return err
	}

	registry := obs.NewRegistry()
	tracer := obs.NewTracer(256)
	clock := sim.WallClock{}
	rng := sim.NewRand(uint64(os.Getpid()))

	// Each node process provisions its own CA and provider key. The
	// replicated state (ledger, nonce caches, audit chain) is what the
	// fleet protocol protects; enrollment against a fleet requires the
	// shared-CA provisioning a real deployment does out of band.
	caKey, err := cryptoutil.GenerateRSAKey(rand.Reader, cryptoutil.DefaultRSABits)
	if err != nil {
		return err
	}
	ca := attest.NewPrivacyCA(fmt.Sprintf("tpnode-s%dm%d-ca", p.shardIndex, p.member), caKey, clock, rng.Fork("ca"))
	provKey, err := cryptoutil.GenerateRSAKey(rand.Reader, cryptoutil.DefaultRSABits)
	if err != nil {
		return err
	}
	pcfg := core.ProviderConfig{
		Name:                  fmt.Sprintf("tpnode-s%dm%d", p.shardIndex, p.member),
		CAPub:                 ca.PublicKey(),
		Key:                   provKey,
		Clock:                 clock,
		ConfirmThresholdCents: p.threshold,
		SnapshotEvery:         p.snapEvery,
		Metrics:               registry,
		Tracer:                tracer,
	}
	sessionPolicy{scheme: p.scheme, maxTx: p.sessMaxTx, maxAge: p.sessMaxAge}.apply(&pcfg)

	node, err := fleet.NewNode(fleet.NodeConfig{
		Shard:     p.shardIndex,
		Member:    p.member,
		StartRole: p.role,
		Scheme:    p.scheme.ID(),
		Epoch:     p.epoch,
		Followers: peers,
		NewBackend: func(role string) (store.Backend, error) {
			if p.dataDir == "" {
				return store.NewMemBackend(), nil
			}
			return store.OpenDir(filepath.Join(p.dataDir, role))
		},
		Build: func(epoch uint64) (*core.Provider, error) {
			pc := pcfg
			pc.Epoch = epoch
			pc.Random = rng.Fork(fmt.Sprintf("life-%d", epoch))
			prov := core.NewProvider(pc)
			approvePALs(prov)
			if err := seedNodeAccounts(prov, p.seedAccounts); err != nil {
				return nil, err
			}
			return prov, nil
		},
		Restore: func(epoch uint64, st *store.Store) (*core.Provider, error) {
			pc := pcfg
			pc.Epoch = epoch
			pc.Random = rng.Fork(fmt.Sprintf("life-%d", epoch))
			prov, err := core.RestoreProvider(pc, st)
			if err != nil {
				return nil, err
			}
			approvePALs(prov)
			return prov, nil
		},
		KillBeforeShip: p.killBefore,
		KillAfterShip:  p.killAfter,
		Metrics:        registry,
		Tracer:         tracer,
		Logger:         p.logger,
		Clock:          clock,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", p.addr)
	if err != nil {
		return err
	}
	p.logger.Info("listening",
		"addr", ln.Addr().String(),
		"role", node.Role(),
		"shard", p.shardIndex,
		"member", p.member,
		"durability", durabilityLabel(p.dataDir),
		"topology", "node")

	startAdmin(p, registry, tracer, func() obs.Readiness {
		st := node.Status()
		return obs.Readiness{Ready: st.Healthy, Detail: map[string]any{
			"role":    node.Role(),
			"epoch":   st.Epoch,
			"applied": st.Applied,
			"fenced":  st.Fenced,
			"links":   linkDetail(st.Links),
		}}
	})

	wsrv := wire.NewServer(wire.ServerConfig{
		Handshake: node.Accept,
		Classify:  node.Classify,
		Workers:   p.workers,
		Metrics:   registry,
		Logger:    p.logger,
	})
	return serveUntilSignal(wsrv, ln, p.logger, func() error {
		if err := node.Finish(); err != nil {
			p.logger.Warn("node finish", "err", err)
		}
		return nil
	}, "node")
}

// runRouter fronts remote shard members with the consistent-hash router
// and supervises them with a warden.
func runRouter(p roleParams) error {
	specs, err := parseFleetSpec(p.fleetSpec)
	if err != nil {
		return err
	}
	registry := obs.NewRegistry()
	tracer := obs.NewTracer(256)

	remotes := make([]*fleet.RemoteShard, len(specs))
	refs := make([]fleet.ShardRef, len(specs))
	for i, members := range specs {
		rs, err := fleet.NewRemoteShard(fleet.RemoteShardConfig{
			Shard:   i,
			Members: members,
			Primary: members[0].Member,
			Scheme:  p.scheme.ID(),
			Metrics: registry,
			Logger:  p.logger,
		})
		if err != nil {
			return err
		}
		remotes[i] = rs
		refs[i] = rs
	}
	router := fleet.NewRouterRefs(refs, 0, registry)
	warden := fleet.NewWarden(remotes, p.healthEvery, p.logger)
	warden.Start()
	p.logger.Info("fleet router assembled", "shards", len(specs), "health_every", p.healthEvery.String())

	ln, err := net.Listen("tcp", p.addr)
	if err != nil {
		return err
	}
	p.logger.Info("listening",
		"addr", ln.Addr().String(),
		"role", "router",
		"topology", fmt.Sprintf("router(%d remote shards)", len(specs)))

	startAdmin(p, registry, tracer, func() obs.Readiness {
		ready := true
		detail := map[string]any{}
		for i, rs := range remotes {
			st, member, failovers, err := rs.Status()
			shardReady := err == nil && st.Healthy && !st.Fenced
			ready = ready && shardReady
			d := map[string]any{
				"ready":     shardReady,
				"epoch":     rs.Epoch(),
				"primary":   member,
				"failovers": failovers,
			}
			if err != nil {
				d["error"] = err.Error()
			} else {
				d["links"] = linkDetail(st.Links)
			}
			detail[fmt.Sprintf("shard%d", i)] = d
		}
		return obs.Readiness{Ready: ready, Detail: detail}
	})

	wsrv := wire.NewServer(wire.ServerConfig{
		// The distributed demo serves the transaction plane without the
		// enrollment handshake (attestation against a fleet needs the
		// shared-CA provisioning a deployment does out of band).
		Classify: classifyHandlerError,
		Handler: func(req []byte) ([]byte, error) {
			if len(req) > 0 && req[0] == 0 {
				// Core protocol frames never start with a zero byte; this
				// is an interactive client's enrollment hello. Refuse it
				// loudly instead of letting a shard choke on it.
				return nil, &netsim.RemoteError{
					Msg:  "fleet: the distributed router serves the transaction plane only (no enrollment handshake); interactive clients need a -role single tpserver",
					Code: netsim.ErrCodePermanent,
				}
			}
			resp, err := router.Handle(req)
			if err != nil && (errors.Is(err, store.ErrCrashed) || fleet.FailoverTrigger(err)) {
				// Residual primary death is transient to the client; let
				// the transport retry through the failed-over router.
				return nil, netsim.ErrReset
			}
			return resp, err
		},
		Workers: p.workers,
		Metrics: registry,
		Logger:  p.logger,
	})
	return serveUntilSignal(wsrv, ln, p.logger, func() error {
		warden.Stop()
		for _, rs := range remotes {
			rs.Close()
		}
		return nil
	}, "router")
}

// runSupervisor spawns a whole fleet — router plus shards×(1+followers)
// member processes — as children of this process, restarting any that
// die. It is the one-command local deployment; the children are exactly
// the processes an operator would run by hand.
func runSupervisor(p roleParams) error {
	if p.followers < 1 {
		return fmt.Errorf("supervisor needs at least 1 follower per shard (got %d)", p.followers)
	}
	self, err := os.Executable()
	if err != nil {
		return err
	}

	type memberProc struct {
		shard, member int
		addr          string
	}
	var members []memberProc
	for s := 0; s < p.shards; s++ {
		for m := 0; m <= p.followers; m++ {
			addr, err := freeListenAddr()
			if err != nil {
				return err
			}
			members = append(members, memberProc{shard: s, member: m, addr: addr})
		}
	}

	var children [][]string
	var shardSpecs []string
	for s := 0; s < p.shards; s++ {
		var spec, peers []string
		for _, mp := range members {
			if mp.shard != s {
				continue
			}
			spec = append(spec, fmt.Sprintf("%d=%s", mp.member, mp.addr))
			if mp.member != 0 {
				peers = append(peers, fmt.Sprintf("%d=%s", mp.member, mp.addr))
			}
		}
		shardSpecs = append(shardSpecs, strings.Join(spec, ","))
		for _, mp := range members {
			if mp.shard != s {
				continue
			}
			role := "follower"
			var peerArg []string
			if mp.member == 0 {
				role = "primary"
				peerArg = []string{"-peers", strings.Join(peers, ",")}
			}
			args := []string{
				"-role", role, "-addr", mp.addr,
				"-shard-index", strconv.Itoa(mp.shard), "-member", strconv.Itoa(mp.member),
				"-threshold", strconv.FormatInt(p.threshold, 10),
				"-snapshot-every", strconv.Itoa(p.snapEvery),
				"-seed-accounts", strconv.Itoa(p.seedAccounts),
				"-crypto", p.scheme.Name(),
			}
			if p.sessMaxTx != 0 {
				args = append(args, "-session-max-tx", strconv.FormatUint(uint64(p.sessMaxTx), 10))
			}
			if p.sessMaxAge != 0 {
				args = append(args, "-session-max-age", p.sessMaxAge.String())
			}
			if p.dataDir != "" {
				args = append(args, "-data", filepath.Join(p.dataDir, fmt.Sprintf("shard-%d", mp.shard), fmt.Sprintf("member-%d", mp.member)))
			}
			args = append(args, peerArg...)
			children = append(children, args)
		}
	}
	routerArgs := []string{
		"-role", "router", "-addr", p.addr,
		"-fleet", strings.Join(shardSpecs, ";"),
		"-threshold", strconv.FormatInt(p.threshold, 10),
		"-crypto", p.scheme.Name(),
	}
	if p.adminAddr != "" {
		routerArgs = append(routerArgs, "-admin", p.adminAddr)
	}
	children = append(children, routerArgs)

	stop := make(chan struct{})
	var mu sync.Mutex
	procs := map[int]*os.Process{}
	var wg sync.WaitGroup
	for i, args := range children {
		wg.Add(1)
		go func(id int, args []string) {
			defer wg.Done()
			backoff := 200 * time.Millisecond
			for {
				select {
				case <-stop:
					return
				default:
				}
				cmd := exec.Command(self, args...)
				cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
				if err := cmd.Start(); err != nil {
					p.logger.Error("supervisor: start child", "args", strings.Join(args, " "), "err", err)
					return
				}
				mu.Lock()
				procs[id] = cmd.Process
				mu.Unlock()
				err := cmd.Wait()
				mu.Lock()
				delete(procs, id)
				mu.Unlock()
				select {
				case <-stop:
					return
				default:
				}
				p.logger.Warn("supervisor: child exited; restarting",
					"args", strings.Join(args, " "), "err", err, "backoff", backoff.String())
				time.Sleep(backoff)
				if backoff < 2*time.Second {
					backoff *= 2
				}
			}
		}(i, args)
	}
	p.logger.Info("supervisor running",
		"children", len(children), "shards", p.shards, "members_per_shard", p.followers+1, "router_addr", p.addr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	sig := <-sigCh
	p.logger.Info("supervisor shutting down", "signal", sig.String())
	close(stop)
	mu.Lock()
	for _, proc := range procs {
		proc.Signal(syscall.SIGTERM)
	}
	mu.Unlock()
	wg.Wait()
	p.logger.Info("shutdown complete", "topology", "supervisor")
	return nil
}

// serveUntilSignal runs the wire server with the standard graceful
// shutdown: SIGINT/SIGTERM drains in-flight requests, then finish
// flushes role state.
func serveUntilSignal(wsrv *wire.Server, ln net.Listener, logger *slog.Logger, finish func() error, topology string) error {
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	drainRes := make(chan error, 1)
	go func() {
		sig := <-sigCh
		logger.Info("shutting down", "signal", sig.String())
		drainRes <- wsrv.Shutdown()
	}()
	if err := wsrv.Serve(ln); err != nil {
		return err
	}
	if derr := <-drainRes; derr != nil {
		logger.Warn("drain deadline forced connections closed", "err", derr)
	}
	if err := finish(); err != nil {
		return err
	}
	logger.Info("shutdown complete", "topology", topology)
	return nil
}

// startAdmin exposes the operational HTTP plane when -admin is set.
func startAdmin(p roleParams, registry *obs.Registry, tracer *obs.Tracer, ready func() obs.Readiness) {
	if p.adminAddr == "" {
		return
	}
	adminLn, err := net.Listen("tcp", p.adminAddr)
	if err != nil {
		p.logger.Error("admin listen", "err", err)
		return
	}
	mux := obs.NewAdminMux(obs.AdminConfig{
		Metrics:   registry,
		Tracer:    tracer,
		Readiness: ready,
		Logger:    p.logger,
	})
	p.logger.Info("admin plane up", "addr", adminLn.Addr().String())
	go func() {
		if err := http.Serve(adminLn, mux); err != nil {
			p.logger.Error("admin plane stopped", "err", err)
		}
	}()
}

// linkDetail renders replication link freshness for /readyz.
func linkDetail(links []fleet.LinkStatus) []map[string]any {
	out := make([]map[string]any, 0, len(links))
	for _, l := range links {
		out = append(out, map[string]any{
			"member":     l.Member,
			"acked":      l.Acked,
			"lag":        l.Lag,
			"ack_age_ms": l.AckAgeMS,
		})
	}
	return out
}

// linkHealthDetail renders the in-process fleet's replication link
// freshness for /readyz.
func linkHealthDetail(links []fleet.LinkHealth, clock sim.Clock) []map[string]any {
	now := clock.Now()
	out := make([]map[string]any, 0, len(links))
	for _, l := range links {
		out = append(out, map[string]any{
			"member":     l.Member,
			"acked":      l.Acked,
			"lag":        l.Lag,
			"ack_age_ms": now.Sub(l.LastAck).Milliseconds(),
		})
	}
	return out
}

// seedNodeAccounts seeds the demo accounts plus n workload accounts
// (acct-00000..) holding 1<<40 cents each and their drain sink —
// the lean fleet-experiment fixture.
func seedNodeAccounts(prov *core.Provider, n int) error {
	for _, acct := range []struct {
		name  string
		cents int64
	}{{"alice", 1_000_000}, {"bob", 0}, {"mallory", 0}} {
		if err := prov.Ledger().CreateAccount(acct.name, acct.cents); err != nil {
			return err
		}
	}
	if err := prov.EnrollCredential("alice", "2468"); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	if err := prov.Ledger().CreateAccount("sink", 0); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if err := prov.Ledger().CreateAccount(fmt.Sprintf("acct-%05d", i), 1<<40); err != nil {
			return err
		}
	}
	return nil
}

// parsePeers parses "member=addr[,member=addr...]" into ship peers.
func parsePeers(spec string) ([]fleet.PeerAddr, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var peers []fleet.PeerAddr
	for _, part := range strings.Split(spec, ",") {
		member, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad -peers entry %q (want member=addr)", part)
		}
		m, err := strconv.Atoi(member)
		if err != nil {
			return nil, fmt.Errorf("bad -peers member %q: %v", member, err)
		}
		peers = append(peers, fleet.PeerAddr{Member: m, Addr: addr})
	}
	return peers, nil
}

// parseFleetSpec parses the router topology: shards separated by ';',
// members by ',', each member "id=addr" or "id=addr~shipaddr" (shipaddr
// is what replication peers dial — e.g. a chaos proxy in front of the
// member's listener). The first member listed is the believed primary.
func parseFleetSpec(spec string) ([][]fleet.MemberAddr, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("-role router requires -fleet \"id=addr,...;id=addr,...\"")
	}
	var shards [][]fleet.MemberAddr
	for si, shardSpec := range strings.Split(spec, ";") {
		var members []fleet.MemberAddr
		for _, part := range strings.Split(shardSpec, ",") {
			id, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
			if !ok {
				return nil, fmt.Errorf("bad -fleet entry %q in shard %d (want id=addr)", part, si)
			}
			m, err := strconv.Atoi(id)
			if err != nil {
				return nil, fmt.Errorf("bad -fleet member %q in shard %d: %v", id, si, err)
			}
			ma := fleet.MemberAddr{Member: m, Addr: addr}
			if main, ship, hasShip := strings.Cut(addr, "~"); hasShip {
				ma.Addr, ma.ShipAddr = main, ship
			}
			members = append(members, ma)
		}
		if len(members) == 0 {
			return nil, fmt.Errorf("-fleet shard %d has no members", si)
		}
		shards = append(shards, members)
	}
	return shards, nil
}

// freeListenAddr grabs an ephemeral localhost port for a supervised
// child. The port is released before the child binds it, so a
// collision is possible in principle; the supervisor's restart loop
// absorbs the rare loss.
func freeListenAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}
