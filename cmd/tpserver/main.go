// Command tpserver runs the service-provider engine on a real TCP
// socket. Clients (cmd/tpclient) connect, perform a demo-grade
// enrollment handshake (the out-of-band EK/AIK certification step of a
// real deployment), and then speak the uni-directional trusted path
// protocol over length-prefixed frames.
//
// With -data the provider journals every state mutation to a crash-safe
// store (WAL + snapshots) in that directory and restores from it on the
// next start; SIGINT/SIGTERM trigger a graceful shutdown that stops
// accepting, closes live connections, and writes a final snapshot.
//
// With -admin the server also exposes an operational HTTP plane:
// /metrics (JSON, ?format=text), /healthz, /readyz, /trace?n=K
// (Chrome trace_event JSON of recent sessions), and /debug/pprof.
//
// Usage:
//
//	tpserver -addr :7700 -data /var/lib/tpserver -snapshot-every 64 -admin :7701
package main

import (
	"crypto/rand"
	"crypto/x509"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"unitp/internal/attest"
	"unitp/internal/core"
	"unitp/internal/cryptoutil"
	"unitp/internal/netsim"
	"unitp/internal/obs"
	"unitp/internal/sim"
	"unitp/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "tpserver: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", ":7700", "listen address")
		threshold = flag.Int64("threshold", 0, "auto-accept below this amount in cents (0 = confirm everything)")
		dataDir   = flag.String("data", "", "durability directory (WAL + snapshots); empty = memory-only")
		snapEvery = flag.Int("snapshot-every", 64, "rotate the snapshot after this many journal commits (needs -data)")
		adminAddr = flag.String("admin", "", "admin plane listen address (/metrics, /healthz, /readyz, /trace, /debug/pprof); empty = disabled")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error")
		traceCap  = flag.Int("trace-buffer", 256, "completed session traces retained for /trace")
		workers   = flag.Int("workers", 4, "concurrent request handlers per connection (1 = serial)")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	logger := obs.NewLogger(os.Stderr, level)

	clock := sim.WallClock{}
	rng := sim.NewRand(uint64(os.Getpid()))
	registry := obs.NewRegistry()
	tracer := obs.NewTracer(*traceCap)

	caKey, err := cryptoutil.GenerateRSAKey(rand.Reader, cryptoutil.DefaultRSABits)
	if err != nil {
		return err
	}
	ca := attest.NewPrivacyCA("tpserver-ca", caKey, clock, rng.Fork("ca"))

	provKey, err := cryptoutil.GenerateRSAKey(rand.Reader, cryptoutil.DefaultRSABits)
	if err != nil {
		return err
	}
	cfg := core.ProviderConfig{
		Name:                  "tpserver",
		CAPub:                 ca.PublicKey(),
		Key:                   provKey,
		Clock:                 clock,
		Random:                rng.Fork("provider"),
		ConfirmThresholdCents: *threshold,
		SnapshotEvery:         *snapEvery,
		Metrics:               registry,
		Tracer:                tracer,
	}
	provider, err := buildProvider(cfg, *dataDir, logger)
	if err != nil {
		return err
	}
	provider.Verifier().ApprovePAL(core.ConfirmPALName, cryptoutil.SHA1(core.ConfirmPALImage()))
	provider.Verifier().ApprovePAL(core.PresencePALName, cryptoutil.SHA1(core.PresencePALImage()))
	provider.Verifier().ApprovePAL(core.ProvisionPALName,
		cryptoutil.SHA1(core.ProvisionPALImage(provider.PublicKeyDER())))
	provider.Verifier().ApprovePAL(core.PINPALName, cryptoutil.SHA1(core.PINPALImage()))
	provider.Verifier().ApprovePAL(core.BatchPALName, cryptoutil.SHA1(core.BatchPALImage()))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Info("listening",
		"addr", ln.Addr().String(),
		"threshold_cents", *threshold,
		"durability", durabilityLabel(*dataDir))

	if *adminAddr != "" {
		adminLn, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			return fmt.Errorf("admin listen: %w", err)
		}
		mux := obs.NewAdminMux(obs.AdminConfig{
			Metrics:   registry,
			Tracer:    tracer,
			Readiness: provider.Health,
			Logger:    logger,
		})
		logger.Info("admin plane up", "addr", adminLn.Addr().String())
		go func() {
			if err := http.Serve(adminLn, mux); err != nil {
				logger.Error("admin plane stopped", "err", err)
			}
		}()
	}

	srv := &server{ca: ca, provider: provider, logger: logger, conns: map[net.Conn]struct{}{}}

	// Graceful shutdown: stop accepting, hang up on live sessions (their
	// in-flight request finishes its journal commit first — Handle only
	// returns after the WAL sync), then snapshot and close the store.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		logger.Info("shutting down", "signal", sig.String())
		srv.beginShutdown()
		ln.Close()
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			if srv.shuttingDown() {
				return srv.finish()
			}
			ln.Close()
			return err
		}
		if !srv.track(conn) {
			conn.Close()
			continue
		}
		go func() {
			defer srv.untrack(conn)
			if err := serveConn(conn, ca, provider, logger, *workers); err != nil && !srv.shuttingDown() {
				logger.Error("connection failed", "remote", conn.RemoteAddr().String(), "err", err)
			}
			st := provider.Stats()
			logger.Debug("provider stats", "stats", fmt.Sprintf("%+v", st))
		}()
	}
}

// buildProvider either restores the provider from an existing durability
// directory or builds a fresh one (seeding demo accounts) and attaches
// the store so the initial snapshot captures the seeded state.
func buildProvider(cfg core.ProviderConfig, dataDir string, logger *slog.Logger) (*core.Provider, error) {
	var st *store.Store
	if dataDir != "" {
		backend, err := store.OpenDir(dataDir)
		if err != nil {
			return nil, fmt.Errorf("open data dir: %w", err)
		}
		st, err = store.Open(backend)
		if err != nil {
			return nil, fmt.Errorf("open store: %w", err)
		}
		if st.Snapshot() != nil {
			p, err := core.RestoreProvider(cfg, st)
			if err != nil {
				return nil, fmt.Errorf("restore provider: %w", err)
			}
			stats := st.Stats()
			logger.Info("restored from durable store",
				"generation", st.Generation(),
				"wal_records_replayed", stats.RecoveredRecords)
			return p, nil
		}
	}

	provider := core.NewProvider(cfg)
	for _, acct := range []struct {
		name  string
		cents int64
	}{{"alice", 1_000_000}, {"bob", 0}, {"mallory", 0}} {
		if err := provider.Ledger().CreateAccount(acct.name, acct.cents); err != nil {
			return nil, err
		}
	}
	if err := provider.EnrollCredential("alice", "2468"); err != nil {
		return nil, err
	}
	if st != nil {
		if err := provider.AttachStore(st); err != nil {
			return nil, fmt.Errorf("attach store: %w", err)
		}
	}
	return provider, nil
}

func durabilityLabel(dataDir string) string {
	if dataDir == "" {
		return "none"
	}
	return dataDir
}

// server tracks accepted connections so shutdown can hang up on all of
// them, and owns the final store flush.
type server struct {
	ca       *attest.PrivacyCA
	provider *core.Provider
	logger   *slog.Logger

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	draining bool
}

func (s *server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *server) untrack(conn net.Conn) {
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *server) shuttingDown() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// beginShutdown refuses new connections and closes the live ones;
// serveConn goroutines unwind on the resulting read errors.
func (s *server) beginShutdown() {
	s.mu.Lock()
	s.draining = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
}

// finish flushes durable state: a final snapshot truncates the WAL so
// the next start restores without replay, then the store files close.
func (s *server) finish() error {
	st := s.provider.Store()
	if st == nil {
		s.logger.Info("shutdown complete", "durability", "memory-only")
		return nil
	}
	if err := s.provider.SnapshotNow(); err != nil && !errors.Is(err, store.ErrCrashed) {
		return fmt.Errorf("final snapshot: %w", err)
	}
	if err := st.Close(); err != nil {
		return fmt.Errorf("close store: %w", err)
	}
	s.logger.Info("shutdown complete", "generation", st.Generation())
	return nil
}

// serveConn performs the enrollment handshake and then serves protocol
// frames, handling up to `workers` requests from this connection
// concurrently (responses stay in request order).
func serveConn(conn net.Conn, ca *attest.PrivacyCA, provider *core.Provider, logger *slog.Logger, workers int) error {
	// Enrollment frame: platformID, EK (PKCS#1 DER), AIK (PKCS#1 DER).
	hello, err := netsim.ReadFrame(conn)
	if err != nil {
		return fmt.Errorf("read enrollment: %w", err)
	}
	r := cryptoutil.NewReader(hello)
	platformID := r.String()
	ekDER := r.Bytes()
	aikDER := r.Bytes()
	if err := r.ExpectEOF(); err != nil {
		return fmt.Errorf("enrollment frame: %w", err)
	}
	ek, err := x509.ParsePKCS1PublicKey(ekDER)
	if err != nil {
		return fmt.Errorf("enrollment EK: %w", err)
	}
	aik, err := x509.ParsePKCS1PublicKey(aikDER)
	if err != nil {
		return fmt.Errorf("enrollment AIK: %w", err)
	}
	if err := ca.EnrollEK(platformID, ek); err != nil {
		return fmt.Errorf("enroll: %w", err)
	}
	cert, err := ca.CertifyAIK(platformID, ek, aik)
	if err != nil {
		return fmt.Errorf("certify: %w", err)
	}
	if err := netsim.WriteFrame(conn, cert.Marshal()); err != nil {
		return fmt.Errorf("send cert: %w", err)
	}
	logger.Info("enrolled platform", "platform_id", platformID, "remote", conn.RemoteAddr().String())
	return netsim.ServeConcurrent(conn, func(req []byte) ([]byte, error) {
		if sid, ok := obs.PeekSession(req); ok {
			logger.Debug("frame", obs.Session(sid), "bytes", len(req))
		}
		return provider.Handle(req)
	}, workers)
}
