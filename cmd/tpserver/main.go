// Command tpserver runs the service-provider engine on a real TCP
// socket. Clients (cmd/tpclient) connect, perform a demo-grade
// enrollment handshake (the out-of-band EK/AIK certification step of a
// real deployment), and then speak the uni-directional trusted path
// protocol over length-prefixed frames.
//
// The listener is the hardened internal/wire server: a bounded accept
// pool with overload shedding, per-peer connection quotas and frame
// rate limits, per-connection idle and write deadlines, and graceful
// drain on SIGINT/SIGTERM — stop accepting, answer the in-flight
// requests within -drain-timeout, then flush durable state.
//
// With -data the provider journals every state mutation to a crash-safe
// store (WAL + snapshots) in that directory and restores from it on the
// next start.
//
// With -admin the server also exposes an operational HTTP plane:
// /metrics (JSON, ?format=text — including the wire.* connection
// lifecycle counters), /healthz, /readyz, /trace?n=K (Chrome
// trace_event JSON of recent sessions), and /debug/pprof.
//
// With -shards N (N > 1) the server runs a provider fleet: N shards
// behind a consistent-hash router, each a primary plus -followers
// replicas fed by synchronous WAL shipping. Accounts partition across
// shards by their routing key; a primary that dies is failed over to
// its most caught-up follower transparently, and with -data each role
// journals under <data>/shard-<i>/{manifest,primary,follower-<j>} —
// the manifest names the role holding the shard's current lineage, so
// a restart after a failover resumes the promoted follower's segment.
//
// Usage:
//
//	tpserver -addr :7700 -data /var/lib/tpserver -snapshot-every 64 -admin :7701
//	tpserver -addr :7700 -shards 4 -followers 2 -data /var/lib/tpfleet
package main

import (
	"crypto/rand"
	"crypto/x509"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"unitp/internal/attest"
	"unitp/internal/core"
	"unitp/internal/cryptoutil"
	"unitp/internal/fleet"
	"unitp/internal/netsim"
	"unitp/internal/obs"
	"unitp/internal/sim"
	"unitp/internal/store"
	"unitp/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "tpserver: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", ":7700", "listen address")
		threshold  = flag.Int64("threshold", 0, "auto-accept below this amount in cents (0 = confirm everything)")
		dataDir    = flag.String("data", "", "durability directory (WAL + snapshots); empty = memory-only")
		snapEvery  = flag.Int("snapshot-every", 64, "rotate the snapshot after this many journal commits (needs -data)")
		adminAddr  = flag.String("admin", "", "admin plane listen address (/metrics, /healthz, /readyz, /trace, /debug/pprof); empty = disabled")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn, error")
		traceCap   = flag.Int("trace-buffer", 256, "completed session traces retained for /trace")
		workers    = flag.Int("workers", 4, "concurrent request handlers per connection (1 = serial)")
		crypto     = flag.String("crypto", "rsa", "quote-signature crypto profile: "+strings.Join(cryptoutil.SchemeNames(), ", "))
		sessMaxTx  = flag.Uint("session-max-tx", 0, "attested-session transaction budget before a forced full re-quote (0 = default)")
		sessMaxAge = flag.Duration("session-max-age", 0, "attested-session lifetime before a forced full re-quote (0 = default)")
		shards     = flag.Int("shards", 1, "provider shards; >1 fronts them with a consistent-hash router (accounts partition across shards)")
		followers  = flag.Int("followers", 1, "follower replicas per shard, fed by synchronous WAL shipping (fleet mode only)")

		role         = flag.String("role", "single", "process role: single (this process is the whole deployment; -shards>1 runs an in-process fleet), primary/follower (one shard member process), router (front remote shard processes), supervisor (spawn a local fleet of child processes)")
		shardIndex   = flag.Int("shard-index", 0, "this member's shard (node roles)")
		member       = flag.Int("member", 0, "this member's id within its shard (node roles)")
		epoch        = flag.Uint64("epoch", 1, "starting epoch for a virgin data dir (node roles)")
		peers        = flag.String("peers", "", "follower ship endpoints as member=addr,... (role primary)")
		killBefore   = flag.Uint64("kill-before-ship", 0, "chaos: SIGKILL self immediately before shipping the batch that crosses this absolute stream offset (0 = off)")
		killAfter    = flag.Uint64("kill-after-ship", 0, "chaos: SIGKILL self immediately after shipping the batch that crosses this absolute stream offset (0 = off)")
		seedAccounts = flag.Int("seed-accounts", 0, "seed this many workload accounts (acct-00000..) plus their drain sink (node roles)")
		fleetSpec    = flag.String("fleet", "", "router topology: shards ';'-separated, members ','-separated, each id=addr[~shipaddr]; first member is the believed primary (role router)")
		healthEvery  = flag.Duration("health-every", 250*time.Millisecond, "warden health-check interval (role router)")

		maxConns  = flag.Int("max-conns", wire.DefaultMaxConns, "accept-pool bound; further connections are shed with a retryable error frame")
		peerConns = flag.Int("max-conns-per-peer", wire.DefaultMaxConnsPerPeer, "connection quota per remote IP")
		peerRate  = flag.Float64("rate-limit", 0, "per-peer request frames per second (0 = unlimited)")
		drainFor  = flag.Duration("drain-timeout", wire.DefaultDrainTimeout, "graceful shutdown waits this long for in-flight requests")
		idleFor   = flag.Duration("idle-timeout", wire.DefaultIdleTimeout, "close connections with no frame activity for this long")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	logger := obs.NewLogger(os.Stderr, level)

	scheme, err := cryptoutil.SchemeByName(*crypto)
	if err != nil {
		return fmt.Errorf("-crypto: %w (choose one of: %s)", err, strings.Join(cryptoutil.SchemeNames(), ", "))
	}

	if *role != "single" {
		return runRole(roleParams{
			role:         *role,
			addr:         *addr,
			adminAddr:    *adminAddr,
			dataDir:      *dataDir,
			threshold:    *threshold,
			snapEvery:    *snapEvery,
			workers:      *workers,
			logger:       logger,
			shardIndex:   *shardIndex,
			member:       *member,
			epoch:        *epoch,
			peers:        *peers,
			killBefore:   *killBefore,
			killAfter:    *killAfter,
			seedAccounts: *seedAccounts,
			fleetSpec:    *fleetSpec,
			healthEvery:  *healthEvery,
			shards:       *shards,
			followers:    *followers,
			scheme:       scheme,
			sessMaxTx:    uint32(*sessMaxTx),
			sessMaxAge:   *sessMaxAge,
		})
	}

	clock := sim.WallClock{}
	rng := sim.NewRand(uint64(os.Getpid()))
	registry := obs.NewRegistry()
	tracer := obs.NewTracer(*traceCap)

	caKey, err := cryptoutil.GenerateRSAKey(rand.Reader, cryptoutil.DefaultRSABits)
	if err != nil {
		return err
	}
	ca := attest.NewPrivacyCA("tpserver-ca", caKey, clock, rng.Fork("ca"))

	policy := sessionPolicy{scheme: scheme, maxTx: uint32(*sessMaxTx), maxAge: *sessMaxAge}
	var eng engine
	if *shards > 1 {
		eng, err = buildFleetEngine(fleetParams{
			shards:    *shards,
			followers: *followers,
			threshold: *threshold,
			snapEvery: *snapEvery,
			dataDir:   *dataDir,
			ca:        ca,
			clock:     clock,
			rng:       rng,
			registry:  registry,
			tracer:    tracer,
			logger:    logger,
			policy:    policy,
		})
	} else {
		eng, err = buildSingleEngine(ca, *threshold, *snapEvery, *dataDir, policy, clock, rng, registry, tracer, logger)
	}
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Info("listening",
		"addr", ln.Addr().String(),
		"threshold_cents", *threshold,
		"durability", durabilityLabel(*dataDir),
		"crypto", scheme.Name(),
		"topology", eng.topology)

	if *adminAddr != "" {
		adminLn, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			return fmt.Errorf("admin listen: %w", err)
		}
		mux := obs.NewAdminMux(obs.AdminConfig{
			Metrics:   registry,
			Tracer:    tracer,
			Readiness: eng.ready,
			Logger:    logger,
		})
		logger.Info("admin plane up", "addr", adminLn.Addr().String())
		go func() {
			if err := http.Serve(adminLn, mux); err != nil {
				logger.Error("admin plane stopped", "err", err)
			}
		}()
	}

	wsrv := wire.NewServer(wire.ServerConfig{
		Handshake:        enrollHandshake(ca, eng, scheme, logger),
		Classify:         classifyHandlerError,
		Workers:          *workers,
		MaxConns:         *maxConns,
		MaxConnsPerPeer:  *peerConns,
		PeerFramesPerSec: *peerRate,
		IdleTimeout:      *idleFor,
		DrainTimeout:     *drainFor,
		Metrics:          registry,
		Logger:           logger,
	})

	// Graceful shutdown: stop accepting, nudge every reader, wait for
	// in-flight requests to answer (their journal commit completes —
	// Handle only returns after the WAL sync), then flush the store.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	drainRes := make(chan error, 1)
	go func() {
		sig := <-sigCh
		logger.Info("shutting down", "signal", sig.String())
		drainRes <- wsrv.Shutdown()
	}()

	if err := wsrv.Serve(ln); err != nil {
		return err
	}
	if derr := <-drainRes; derr != nil {
		logger.Warn("drain deadline forced connections closed", "err", derr)
	}
	if err := eng.finish(); err != nil {
		return err
	}
	logger.Info("shutdown complete", "topology", eng.topology)
	return nil
}

// enrollHandshake builds the wire handshake hook: read the enrollment
// frame (platformID, EK, AIK — all the out-of-band certification a real
// deployment does once per device), certify the AIK under the server's
// crypto profile, and return the engine handler for the connection's
// frames. The AIK bytes are scheme-encoded (PKCS#1 DER for RSA, 32 raw
// bytes for Ed25519); a client built for a different profile fails the
// certify step loudly rather than obtaining a cert the verifier will
// refuse later. Re-enrollment of a known platform with the same EK is
// idempotent, so a supervised client's reconnect simply re-runs the
// handshake; a different EK for a known platform is still refused
// (ErrEKMismatch).
func enrollHandshake(ca *attest.PrivacyCA, eng engine, scheme cryptoutil.Scheme, logger *slog.Logger) func(net.Conn) (netsim.Handler, error) {
	return func(conn net.Conn) (netsim.Handler, error) {
		hello, err := netsim.ReadFrame(conn)
		if err != nil {
			return nil, fmt.Errorf("read enrollment: %w", err)
		}
		r := cryptoutil.NewReader(hello)
		platformID := r.String()
		ekDER := r.Bytes()
		aikRaw := r.Bytes()
		if err := r.ExpectEOF(); err != nil {
			return nil, fmt.Errorf("enrollment frame: %w", err)
		}
		ek, err := x509.ParsePKCS1PublicKey(ekDER)
		if err != nil {
			return nil, fmt.Errorf("enrollment EK: %w", err)
		}
		if err := ca.EnrollEK(platformID, ek); err != nil && !errors.Is(err, attest.ErrPlatformEnrolled) {
			return nil, fmt.Errorf("enroll: %w", err)
		}
		cert, err := ca.CertifyAIKScheme(platformID, ek, scheme.ID(), aikRaw)
		if err != nil {
			// A profile mismatch is an operator configuration problem:
			// refuse with a permanent error frame so the client reads
			// the reason instead of a bare connection reset, and log it
			// above debug level.
			err = fmt.Errorf("certify (profile %s): %w", scheme.Name(), err)
			logger.Warn("enrollment refused", "platform_id", platformID,
				"remote", conn.RemoteAddr().String(), "err", err)
			_ = netsim.WriteFrame(conn, netsim.EncodeErrorFrameCode(netsim.ErrCodePermanent, err))
			return nil, err
		}
		// Tagged write: a marshalled cert may begin with 0x00, which a
		// bare frame would make indistinguishable from a refusal.
		if err := wire.WriteHandshakeFrame(conn, cert.Marshal()); err != nil {
			return nil, fmt.Errorf("send cert: %w", err)
		}
		logger.Info("enrolled platform", "platform_id", platformID, "remote", conn.RemoteAddr().String())
		return func(req []byte) ([]byte, error) {
			if sid, ok := obs.PeekSession(req); ok {
				logger.Debug("frame", obs.Session(sid), "bytes", len(req))
			}
			return eng.handle(req)
		}, nil
	}
}

// classifyHandlerError maps engine errors to error-frame codes: requests
// the router definitively refuses (a batch spanning shards) are
// permanent — no retransmission changes the routing — while everything
// else keeps the default transient classification.
func classifyHandlerError(err error) uint8 {
	if errors.Is(err, fleet.ErrCrossShard) {
		return netsim.ErrCodePermanent
	}
	return wire.DefaultClassify(err)
}

// sessionPolicy bundles the crypto profile and attested-session limits
// every provider in the process shares, whatever the topology.
type sessionPolicy struct {
	scheme cryptoutil.Scheme
	maxTx  uint32        // 0 = provider default
	maxAge time.Duration // 0 = provider default
}

// apply stamps the policy onto a provider config.
func (sp sessionPolicy) apply(cfg *core.ProviderConfig) {
	cfg.Scheme = sp.scheme
	cfg.SessionMaxTx = sp.maxTx
	cfg.SessionMaxAge = sp.maxAge
}

// engine abstracts what the listener serves: a single provider, or a
// sharded fleet behind a router. The wire server, the admin plane, and
// graceful shutdown are identical either way.
type engine struct {
	topology string
	handle   func(req []byte) ([]byte, error)
	ready    func() obs.Readiness
	finish   func() error
	stats    func() string
}

// buildSingleEngine is the classic deployment: one provider, optionally
// durable.
func buildSingleEngine(ca *attest.PrivacyCA, threshold int64, snapEvery int, dataDir string,
	policy sessionPolicy, clock sim.Clock, rng *sim.Rand, registry *obs.Registry,
	tracer *obs.Tracer, logger *slog.Logger) (engine, error) {

	provKey, err := cryptoutil.GenerateRSAKey(rand.Reader, cryptoutil.DefaultRSABits)
	if err != nil {
		return engine{}, err
	}
	cfg := core.ProviderConfig{
		Name:                  "tpserver",
		CAPub:                 ca.PublicKey(),
		Key:                   provKey,
		Clock:                 clock,
		Random:                rng.Fork("provider"),
		ConfirmThresholdCents: threshold,
		SnapshotEvery:         snapEvery,
		Metrics:               registry,
		Tracer:                tracer,
	}
	policy.apply(&cfg)
	provider, err := buildProvider(cfg, dataDir, logger)
	if err != nil {
		return engine{}, err
	}
	approvePALs(provider)
	return engine{
		topology: "single",
		handle:   provider.Handle,
		ready:    provider.Health,
		finish:   func() error { return flushProvider(provider) },
		stats:    func() string { return fmt.Sprintf("%+v", provider.Stats()) },
	}, nil
}

// fleetParams bundles buildFleetEngine's many knobs.
type fleetParams struct {
	shards    int
	followers int
	threshold int64
	snapEvery int
	dataDir   string
	ca        *attest.PrivacyCA
	clock     sim.Clock
	rng       *sim.Rand
	registry  *obs.Registry
	tracer    *obs.Tracer
	logger    *slog.Logger
	policy    sessionPolicy
}

// buildFleetEngine runs N shards behind a consistent-hash router. Each
// shard is a primary plus `followers` replicas fed by synchronous WAL
// shipping; with -data every role journals under
// <data>/shard-<i>/{manifest,primary,follower-<j>} and a restart
// follows the shard manifest to whichever role holds the current
// lineage at the recorded epoch. A primary that dies is failed over
// transparently by the router; the straddling client request surfaces
// as a connection reset, which the client transport retries against the
// promoted follower.
func buildFleetEngine(p fleetParams) (engine, error) {
	if p.followers < 1 {
		return engine{}, fmt.Errorf("fleet mode needs at least 1 follower per shard (got %d)", p.followers)
	}
	shards := make([]*fleet.Shard, 0, p.shards)
	for i := 0; i < p.shards; i++ {
		s, err := buildFleetShard(i, p)
		if err != nil {
			return engine{}, err
		}
		shards = append(shards, s)
	}
	router := fleet.NewRouter(shards, 0, p.registry)
	p.logger.Info("fleet assembled", "shards", p.shards, "followers_per_shard", p.followers)

	return engine{
		topology: fmt.Sprintf("fleet(%d shards × %d followers)", p.shards, p.followers),
		handle: func(req []byte) ([]byte, error) {
			resp, err := router.Handle(req)
			if err != nil && (errors.Is(err, store.ErrCrashed) || fleet.FailoverTrigger(err)) {
				// A residual primary death is transient to the client —
				// exactly like a single provider's crash — so let the
				// transport retry through the failed-over router.
				return nil, netsim.ErrReset
			}
			return resp, err
		},
		ready: func() obs.Readiness {
			ready := true
			detail := map[string]any{}
			for i, s := range shards {
				h := s.Primary().Health()
				ready = ready && h.Ready
				detail[fmt.Sprintf("shard%d", i)] = map[string]any{
					"ready":     h.Ready,
					"epoch":     s.Epoch(),
					"failovers": s.Failovers(),
					"followers": s.FollowerApplied(),
					"links":     linkHealthDetail(s.LinkHealth(), p.clock),
				}
			}
			return obs.Readiness{Ready: ready, Detail: detail}
		},
		finish: func() error {
			for i, s := range shards {
				if err := flushProvider(s.Primary()); err != nil {
					return fmt.Errorf("shard %d: %w", i, err)
				}
			}
			return nil
		},
		stats: func() string {
			out := ""
			for i, s := range shards {
				out += fmt.Sprintf("shard%d{epoch=%d failovers=%d applied=%v} ",
					i, s.Epoch(), s.Failovers(), s.FollowerApplied())
			}
			return out
		},
	}, nil
}

// buildFleetShard assembles one shard: its own provider key and random
// stream, the shared CA and demo accounts, and per-role durable
// backends when -data is set.
func buildFleetShard(i int, p fleetParams) (*fleet.Shard, error) {
	provKey, err := cryptoutil.GenerateRSAKey(rand.Reader, cryptoutil.DefaultRSABits)
	if err != nil {
		return nil, err
	}
	pcfg := core.ProviderConfig{
		Name:                  fmt.Sprintf("tpserver-shard%d", i),
		CAPub:                 p.ca.PublicKey(),
		Key:                   provKey,
		Clock:                 p.clock,
		ConfirmThresholdCents: p.threshold,
		SnapshotEvery:         p.snapEvery,
		Metrics:               p.registry,
		Tracer:                p.tracer,
	}
	p.policy.apply(&pcfg)
	return fleet.NewShard(fleet.ShardConfig{
		Index:     i,
		Followers: p.followers,
		Metrics:   p.registry,
		Tracer:    p.tracer,
		Clock:     p.clock,
		NewBackend: func(role string) (store.Backend, error) {
			if p.dataDir == "" {
				return store.NewMemBackend(), nil
			}
			return store.OpenDir(filepath.Join(p.dataDir, fmt.Sprintf("shard-%d", i), role))
		},
		BuildPrimary: func(epoch uint64) (*core.Provider, error) {
			pc := pcfg
			pc.Epoch = epoch
			pc.Random = p.rng.Fork(fmt.Sprintf("shard%d-life-%d", i, epoch))
			prov := core.NewProvider(pc)
			approvePALs(prov)
			// Every shard seeds the full demo account set; the ring
			// decides which shard's copy a user actually lives on.
			for _, acct := range []struct {
				name  string
				cents int64
			}{{"alice", 1_000_000}, {"bob", 0}, {"mallory", 0}} {
				if err := prov.Ledger().CreateAccount(acct.name, acct.cents); err != nil {
					return nil, err
				}
			}
			if err := prov.EnrollCredential("alice", "2468"); err != nil {
				return nil, err
			}
			return prov, nil
		},
		RestorePrimary: func(epoch uint64, st *store.Store) (*core.Provider, error) {
			// Accounts, credentials, and caches travel in the durable
			// state; only configuration that is not state — the key and
			// the PAL approvals — is re-applied.
			pc := pcfg
			pc.Epoch = epoch
			pc.Random = p.rng.Fork(fmt.Sprintf("shard%d-life-%d", i, epoch))
			prov, err := core.RestoreProvider(pc, st)
			if err != nil {
				return nil, err
			}
			approvePALs(prov)
			return prov, nil
		},
	})
}

// approvePALs records the measurement whitelist every provider expects
// from a genuine Flicker session.
func approvePALs(p *core.Provider) {
	p.Verifier().ApprovePAL(core.ConfirmPALName, cryptoutil.SHA1(core.ConfirmPALImage()))
	p.Verifier().ApprovePAL(core.PresencePALName, cryptoutil.SHA1(core.PresencePALImage()))
	p.Verifier().ApprovePAL(core.ProvisionPALName,
		cryptoutil.SHA1(core.ProvisionPALImage(p.PublicKeyDER())))
	p.Verifier().ApprovePAL(core.PINPALName, cryptoutil.SHA1(core.PINPALImage()))
	p.Verifier().ApprovePAL(core.BatchPALName, cryptoutil.SHA1(core.BatchPALImage()))
	p.Verifier().ApprovePAL(core.SessionConfirmPALName, cryptoutil.SHA1(core.SessionConfirmPALImage()))
	p.Verifier().ApprovePAL(core.SessionOpenPALNameFor(p.PublicKeyDER()),
		cryptoutil.SHA1(core.SessionOpenPALImage(p.PublicKeyDER())))
}

// flushProvider writes a final snapshot (truncating the WAL so the next
// start restores without replay) and closes the provider's store.
func flushProvider(p *core.Provider) error {
	st := p.Store()
	if st == nil {
		return nil
	}
	if err := p.SnapshotNow(); err != nil && !errors.Is(err, store.ErrCrashed) {
		return fmt.Errorf("final snapshot: %w", err)
	}
	if err := st.Close(); err != nil {
		return fmt.Errorf("close store: %w", err)
	}
	return nil
}

// buildProvider either restores the provider from an existing durability
// directory or builds a fresh one (seeding demo accounts) and attaches
// the store so the initial snapshot captures the seeded state.
func buildProvider(cfg core.ProviderConfig, dataDir string, logger *slog.Logger) (*core.Provider, error) {
	var st *store.Store
	if dataDir != "" {
		backend, err := store.OpenDir(dataDir)
		if err != nil {
			return nil, fmt.Errorf("open data dir: %w", err)
		}
		st, err = store.Open(backend)
		if err != nil {
			return nil, fmt.Errorf("open store: %w", err)
		}
		if st.Snapshot() != nil {
			p, err := core.RestoreProvider(cfg, st)
			if err != nil {
				return nil, fmt.Errorf("restore provider: %w", err)
			}
			stats := st.Stats()
			logger.Info("restored from durable store",
				"generation", st.Generation(),
				"wal_records_replayed", stats.RecoveredRecords)
			return p, nil
		}
	}

	provider := core.NewProvider(cfg)
	for _, acct := range []struct {
		name  string
		cents int64
	}{{"alice", 1_000_000}, {"bob", 0}, {"mallory", 0}} {
		if err := provider.Ledger().CreateAccount(acct.name, acct.cents); err != nil {
			return nil, err
		}
	}
	if err := provider.EnrollCredential("alice", "2468"); err != nil {
		return nil, err
	}
	if st != nil {
		if err := provider.AttachStore(st); err != nil {
			return nil, fmt.Errorf("attach store: %w", err)
		}
	}
	return provider, nil
}

func durabilityLabel(dataDir string) string {
	if dataDir == "" {
		return "none"
	}
	return dataDir
}
