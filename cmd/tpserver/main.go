// Command tpserver runs the service-provider engine on a real TCP
// socket. Clients (cmd/tpclient) connect, perform a demo-grade
// enrollment handshake (the out-of-band EK/AIK certification step of a
// real deployment), and then speak the uni-directional trusted path
// protocol over length-prefixed frames.
//
// Usage:
//
//	tpserver -addr :7700
package main

import (
	"crypto/rand"
	"crypto/x509"
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"unitp/internal/attest"
	"unitp/internal/core"
	"unitp/internal/cryptoutil"
	"unitp/internal/netsim"
	"unitp/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("tpserver: %v", err)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", ":7700", "listen address")
		threshold = flag.Int64("threshold", 0, "auto-accept below this amount in cents (0 = confirm everything)")
	)
	flag.Parse()

	clock := sim.WallClock{}
	rng := sim.NewRand(uint64(os.Getpid()))

	caKey, err := cryptoutil.GenerateRSAKey(rand.Reader, cryptoutil.DefaultRSABits)
	if err != nil {
		return err
	}
	ca := attest.NewPrivacyCA("tpserver-ca", caKey, clock, rng.Fork("ca"))

	provKey, err := cryptoutil.GenerateRSAKey(rand.Reader, cryptoutil.DefaultRSABits)
	if err != nil {
		return err
	}
	provider := core.NewProvider(core.ProviderConfig{
		Name:                  "tpserver",
		CAPub:                 ca.PublicKey(),
		Key:                   provKey,
		Clock:                 clock,
		Random:                rng.Fork("provider"),
		ConfirmThresholdCents: *threshold,
	})
	provider.Verifier().ApprovePAL(core.ConfirmPALName, cryptoutil.SHA1(core.ConfirmPALImage()))
	provider.Verifier().ApprovePAL(core.PresencePALName, cryptoutil.SHA1(core.PresencePALImage()))
	provider.Verifier().ApprovePAL(core.ProvisionPALName,
		cryptoutil.SHA1(core.ProvisionPALImage(provider.PublicKeyDER())))
	provider.Verifier().ApprovePAL(core.PINPALName, cryptoutil.SHA1(core.PINPALImage()))
	provider.Verifier().ApprovePAL(core.BatchPALName, cryptoutil.SHA1(core.BatchPALImage()))
	for _, acct := range []struct {
		name  string
		cents int64
	}{{"alice", 1_000_000}, {"bob", 0}, {"mallory", 0}} {
		if err := provider.Ledger().CreateAccount(acct.name, acct.cents); err != nil {
			return err
		}
	}
	if err := provider.EnrollCredential("alice", "2468"); err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	log.Printf("tpserver: listening on %s (confirm threshold: %d cents)", ln.Addr(), *threshold)

	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			if err := serveConn(conn, ca, provider); err != nil {
				log.Printf("tpserver: %s: %v", conn.RemoteAddr(), err)
			}
			st := provider.Stats()
			log.Printf("tpserver: stats: %+v", st)
		}()
	}
}

// serveConn performs the enrollment handshake and then serves protocol
// frames.
func serveConn(conn net.Conn, ca *attest.PrivacyCA, provider *core.Provider) error {
	// Enrollment frame: platformID, EK (PKCS#1 DER), AIK (PKCS#1 DER).
	hello, err := netsim.ReadFrame(conn)
	if err != nil {
		return fmt.Errorf("read enrollment: %w", err)
	}
	r := cryptoutil.NewReader(hello)
	platformID := r.String()
	ekDER := r.Bytes()
	aikDER := r.Bytes()
	if err := r.ExpectEOF(); err != nil {
		return fmt.Errorf("enrollment frame: %w", err)
	}
	ek, err := x509.ParsePKCS1PublicKey(ekDER)
	if err != nil {
		return fmt.Errorf("enrollment EK: %w", err)
	}
	aik, err := x509.ParsePKCS1PublicKey(aikDER)
	if err != nil {
		return fmt.Errorf("enrollment AIK: %w", err)
	}
	if err := ca.EnrollEK(platformID, ek); err != nil {
		return fmt.Errorf("enroll: %w", err)
	}
	cert, err := ca.CertifyAIK(platformID, ek, aik)
	if err != nil {
		return fmt.Errorf("certify: %w", err)
	}
	if err := netsim.WriteFrame(conn, cert.Marshal()); err != nil {
		return fmt.Errorf("send cert: %w", err)
	}
	log.Printf("tpserver: enrolled %s", platformID)
	return netsim.Serve(conn, provider.Handle)
}
