// CAPTCHA replacement: a forum signup gated on proof of human presence.
// The example runs the same gate three ways — a human solving a CAPTCHA,
// an OCR bot attacking the CAPTCHA, and both against the trusted-path
// presence proof — and prints the comparison the paper's F4 evaluation
// quantifies.
//
//	go run ./examples/captcha-gate
package main

import (
	"fmt"
	"log"

	"unitp"
	"unitp/internal/captcha"
	"unitp/internal/sim"
)

const attempts = 30

func main() {
	fmt.Println("signup gate A: CAPTCHA")
	runCaptchaGate()
	fmt.Println()
	fmt.Println("signup gate B: uni-directional trusted path presence proof")
	if err := runPresenceGate(); err != nil {
		log.Fatal(err)
	}
}

func runCaptchaGate() {
	clock := sim.NewVirtualClock()
	rng := sim.NewRand(11)
	for _, solver := range []captcha.Solver{captcha.HumanSolver(), captcha.OCRBot()} {
		svc := captcha.NewService(rng.Fork("svc-" + solver.Name))
		passes, elapsed := captcha.Run(svc, solver, clock, rng.Fork(solver.Name), attempts)
		fmt.Printf("  %-10s signups: %2d/%d  (mean %v per attempt)\n",
			solver.Name, passes, attempts, elapsed/attempts)
	}
	fmt.Println("  → bots get through; humans burn ~11s per signup")
}

func runPresenceGate() error {
	// The human: attaches to the keyboard, presses a key when the
	// trusted prompt appears.
	humanOK := 0
	var humanTime string
	{
		d, err := unitp.NewDeployment(unitp.DeploymentConfig{Seed: 12})
		if err != nil {
			return err
		}
		unitp.DefaultUser(d.Rng.Fork("user")).AttachTo(d.Machine)
		start := d.Clock.Elapsed()
		for i := 0; i < attempts; i++ {
			outcome, err := d.Client.ProveHumanPresence()
			if err != nil {
				return err
			}
			if outcome.Accepted && d.Provider.ValidPresenceToken(outcome.Token) {
				humanOK++
			}
		}
		humanTime = fmt.Sprintf("%v", (d.Clock.Elapsed()-start)/attempts)
	}
	fmt.Printf("  %-10s signups: %2d/%d  (mean %s per attempt)\n", "human", humanOK, attempts, humanTime)

	// The bot: no human at the keyboard; the PAL session gets no
	// keystroke and no token is ever minted.
	botOK := 0
	{
		d, err := unitp.NewDeployment(unitp.DeploymentConfig{Seed: 13})
		if err != nil {
			return err
		}
		d.Machine.SetInputPump(func() bool { return false })
		for i := 0; i < attempts; i++ {
			outcome, err := d.Client.ProveHumanPresence()
			if err == nil && outcome.Accepted {
				botOK++
			}
		}
	}
	fmt.Printf("  %-10s signups: %2d/%d\n", "bot", botOK, attempts)
	fmt.Println("  → humans pass every time, faster than a CAPTCHA; bots cannot pass at all")
	return nil
}
