// Secure login: the user types their PIN while a keylogger is recording
// every keystroke the OS can see — and captures nothing, because the
// PIN-entry PAL owns the keyboard exclusively. The provider verifies via
// the quoted binding that the enrolled credential was typed by a human
// on this very machine.
//
// A second act shows what the same keylogger harvests from a
// conventional (OS-mediated) password prompt.
//
//	go run ./examples/secure-login
package main

import (
	"fmt"
	"log"

	"unitp"
	"unitp/internal/hostos"
)

func main() {
	d, err := unitp.NewDeployment(unitp.DeploymentConfig{
		Seed:        21,
		Credentials: map[string]string{"alice": "2468"},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The resident keylogger, installed before anything happens.
	keylogger := hostos.NewKeylogger()
	if err := d.OS.Install(keylogger); err != nil {
		log.Fatal(err)
	}

	fmt.Println("── act 1: conventional login through the OS ──")
	// The user types their password into an ordinary login form.
	loginForm := d.OS.RunApp("legacy-login-form")
	d.OS.TypeString("hunter2")
	if pw, ok := loginForm.ReadLine(); ok {
		fmt.Printf("  login form received: %q\n", pw)
	}
	fmt.Printf("  keylogger captured:  %q   ← credential stolen\n\n", keylogger.Captured())

	fmt.Println("── act 2: trusted-path login ──")
	user := unitp.DefaultUser(d.Rng.Fork("user"))
	user.PIN = "2468"
	user.AttachTo(d.Machine)

	before := keylogger.Captured()
	outcome, err := d.Client.Login("alice")
	if err != nil {
		log.Fatal(err)
	}
	stolen := keylogger.Captured()[len(before):]
	fmt.Printf("  provider outcome: accepted=%v token=%s (%s)\n",
		outcome.Accepted, outcome.Token, outcome.Reason)
	fmt.Printf("  keylogger captured during PIN entry: %q   ← nothing\n", stolen)

	fmt.Println()
	fmt.Println("── act 3: the keylogger's best guess fails ──")
	// Even replaying act 1's harvest as a PIN gets the malware nowhere:
	// it cannot reach the PAL's exclusive input, and without the PAL it
	// cannot produce a valid login binding.
	user.PIN = "hunter2"[0:4] // malware-driven "user" trying stolen material
	user.AttachTo(d.Machine)
	outcome, err = d.Client.Login("alice")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  login with stolen-material guess: accepted=%v (%s)\n",
		outcome.Accepted, outcome.Reason)
}
