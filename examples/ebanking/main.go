// E-banking under active malware: a banking trojan on the client
// rewrites outbound payment orders and fakes the inbound challenge to
// hide it. The example shows the paper's two defence layers in action:
//
//  1. a vigilant user sees the *provider's* copy of the transaction on
//     the trusted prompt and denies the manipulated payment;
//
//  2. even when the trojan also rewrites the challenge so the prompt
//     looks right, the cryptographic binding exposes the mismatch and
//     the provider rejects — mallory never gets paid.
//
//     go run ./examples/ebanking
package main

import (
	"fmt"
	"log"

	"unitp"
	"unitp/internal/core"
)

func main() {
	fmt.Println("── scenario 1: trojan rewrites the payee; user is vigilant ──")
	if err := scenarioVisibleTampering(); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("── scenario 2: trojan also hides the rewrite from the user ──")
	if err := scenarioHiddenTampering(); err != nil {
		log.Fatal(err)
	}
}

// installPayeeRewriter adds the trojan's outbound hook: every payment
// order is redirected to mallory.
func installPayeeRewriter(d *unitp.Deployment) {
	d.OS.AddInterceptor(func(p []byte) []byte {
		msg, err := core.DecodeMessage(p)
		if err != nil {
			return p
		}
		if sub, ok := msg.(*core.SubmitTx); ok {
			sub.Tx.To = "mallory"
			sub.Tx.AmountCents = 99_900
			if out, err := core.EncodeMessage(sub); err == nil {
				fmt.Println("  [trojan] rewrote outbound order: payee → mallory, amount → 999.00")
				return out
			}
		}
		return p
	})
}

func scenarioVisibleTampering() error {
	d, err := unitp.NewDeployment(unitp.DeploymentConfig{Seed: 7})
	if err != nil {
		return err
	}
	installPayeeRewriter(d)

	user := unitp.DefaultUser(d.Rng.Fork("user"))
	intended := &unitp.Transaction{
		ID: "rent-06", From: "alice", To: "bob",
		AmountCents: 85_000, Currency: "EUR", Memo: "rent june",
	}
	user.Intend(intended)
	user.AttachTo(d.Machine)

	outcome, err := d.Client.SubmitTransaction(intended)
	if err != nil {
		return err
	}
	report(d, outcome)
	return nil
}

func scenarioHiddenTampering() error {
	d, err := unitp.NewDeployment(unitp.DeploymentConfig{Seed: 8})
	if err != nil {
		return err
	}
	installPayeeRewriter(d)
	// The trojan's second hook: rewrite the inbound challenge so the
	// trusted prompt shows what the user expects.
	d.OS.AddInboundInterceptor(func(p []byte) []byte {
		msg, err := core.DecodeMessage(p)
		if err != nil {
			return p
		}
		if ch, ok := msg.(*core.Challenge); ok {
			ch.Tx.To = "bob"
			ch.Tx.AmountCents = 85_000
			if out, err := core.EncodeMessage(ch); err == nil {
				fmt.Println("  [trojan] rewrote inbound challenge to hide the manipulation")
				return out
			}
		}
		return p
	})

	user := unitp.DefaultUser(d.Rng.Fork("user"))
	intended := &unitp.Transaction{
		ID: "rent-06", From: "alice", To: "bob",
		AmountCents: 85_000, Currency: "EUR", Memo: "rent june",
	}
	user.Intend(intended)
	user.AttachTo(d.Machine)

	outcome, err := d.Client.SubmitTransaction(intended)
	if err != nil {
		return err
	}
	report(d, outcome)
	return nil
}

func report(d *unitp.Deployment, outcome *unitp.Outcome) {
	for _, line := range d.Machine.Display().Lines() {
		fmt.Printf("  display [%s]: %s\n", line.By, line.Text)
	}
	fmt.Printf("  provider outcome: accepted=%v authentic=%v (%s)\n",
		outcome.Accepted, outcome.Authentic, outcome.Reason)
	mallory, _ := d.Provider.Ledger().Balance("mallory")
	bob, _ := d.Provider.Ledger().Balance("bob")
	fmt.Printf("  balances: bob=%d mallory=%d  → mallory got %d cents\n", bob, mallory, mallory)
	st := d.Provider.Stats()
	fmt.Printf("  provider stats: denied-by-user=%d rejected-forged=%d\n",
		st.DeniedByUser, st.RejectedForged)
}
