// Quickstart: one confirmed transaction through the uni-directional
// trusted path, entirely in-memory.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"unitp"
)

func main() {
	// A full deployment: client machine (simulated DRTM + TPM), its
	// operating system, a privacy CA, the service provider, and a
	// broadband link — all deterministic under one seed.
	d, err := unitp.NewDeployment(unitp.DeploymentConfig{
		Seed:       42,
		TPMProfile: unitp.ProfileInfineon(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// The human at the keyboard, and the transaction they intend.
	user := unitp.DefaultUser(d.Rng.Fork("user"))
	tx := &unitp.Transaction{
		ID:          "quickstart-1",
		From:        "alice",
		To:          "bob",
		AmountCents: 12_300,
		Currency:    "EUR",
		Memo:        "rent",
	}
	user.Intend(tx)
	user.AttachTo(d.Machine)

	// Submit. Under the hood: the provider challenges with a fresh
	// nonce, the client late-launches the confirmation PAL, the PAL
	// displays the provider's copy of the transaction and reads the
	// human's keystroke over exclusively owned input, and a TPM quote
	// proves the whole thing remotely.
	start := d.Clock.Elapsed()
	outcome, err := d.Client.SubmitTransaction(tx)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := d.Clock.Elapsed() - start

	fmt.Printf("outcome: accepted=%v authentic=%v (%s)\n",
		outcome.Accepted, outcome.Authentic, outcome.Reason)
	bobBalance, err := d.Provider.Ledger().Balance("bob")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bob's balance: %d cents\n", bobBalance)
	fmt.Printf("virtual time for the transaction (network + TPM + human): %v\n", elapsed)

	// What the human saw on the trusted display:
	for _, line := range d.Machine.Display().Lines() {
		fmt.Printf("display [%s]: %s\n", line.By, line.Text)
	}
}
