// Attack lab: runs the full security evaluation's attack suite against
// the intact platform and against targeted ablations, printing a verdict
// per strategy — the executable form of the paper's security argument.
//
//	go run ./examples/attack-lab
package main

import (
	"fmt"
	"log"

	"unitp"
	"unitp/internal/workload"
)

func main() {
	fmt.Println("attack lab — every strategy vs the uni-directional trusted path")
	fmt.Println()

	fmt.Println("phase 1: full platform protections")
	for i, atk := range unitp.AllAttacks() {
		res, err := atk.Execute(unitp.DeploymentConfig{Seed: uint64(1000 + i)})
		if err != nil {
			log.Fatalf("%s: %v", atk.Name(), err)
		}
		printResult(res)
	}

	fmt.Println()
	fmt.Println("phase 2: ablations — remove one protection, rerun its attack")
	ablations := []struct {
		attack unitp.Attack
		mut    func(*unitp.Protections)
		label  string
	}{
		{workload.PALInputInjection{}, func(p *unitp.Protections) { p.ExclusiveInput = false }, "exclusive input OFF"},
		{workload.PALSubstitution{}, func(p *unitp.Protections) { p.MeasuredLaunch = false }, "measured launch OFF"},
		{workload.LocalityForgery{}, func(p *unitp.Protections) { p.LocalityGating = false }, "locality gating OFF"},
		{workload.DMAKeyTheft{}, func(p *unitp.Protections) { p.DMAProtection = false }, "DMA protection OFF"},
	}
	for i, abl := range ablations {
		prot := unitp.AllProtections()
		abl.mut(&prot)
		res, err := abl.attack.Execute(unitp.DeploymentConfig{
			Seed:        uint64(2000 + i),
			Protections: &prot,
		})
		if err != nil {
			log.Fatalf("%s: %v", abl.attack.Name(), err)
		}
		printResult(res)
	}
	fmt.Println()
	fmt.Println("phase 3: the cuckoo relay and its policy defence")
	res, err := workload.CuckooRelay{Bind: true}.Execute(unitp.DeploymentConfig{Seed: 3000})
	if err != nil {
		log.Fatal(err)
	}
	printResult(res)

	fmt.Println()
	fmt.Println("reading: the two baselines show the pre-paper world; the intact trusted")
	fmt.Println("path rejects every malware forgery; each ablation re-admits exactly its")
	fmt.Println("attack — every platform property is load-bearing. The cuckoo relay is the")
	fmt.Println("one strategy platform protections cannot stop (the attacker's machine is")
	fmt.Println("genuine); binding each account to its enrolled platform closes it.")
}

func printResult(res unitp.AttackResult) {
	verdict := "rejected       "
	if res.ForgedAccepted {
		verdict = "FORGED ACCEPTED"
	}
	fmt.Printf("  [%s]  %-42s (%s) — %s\n", verdict, res.Attack, res.Protections, res.Detail)
}
